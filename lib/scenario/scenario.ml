(* Day-in-the-life scenarios: declarative world + load + faults + SLO,
   compiled onto the deterministic experiment runner. *)

module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Node = Renofs_net.Node
module Topology = Renofs_net.Topology
module Udp = Renofs_transport.Udp
module Fs = Renofs_vfs.Fs
module Nfs_client = Renofs_core.Nfs_client
module Nfs_server = Renofs_core.Nfs_server
module Trace = Renofs_trace.Trace
module Metrics = Renofs_metrics.Metrics
module Json = Renofs_json.Json
module Fault = Renofs_fault.Fault
module Fleet = Renofs_fleet.Fleet
module E = Renofs_workload.Experiments
module R = Renofs_workload.Run_spec
module Nhfsstone = Renofs_workload.Nhfsstone
module Fileset = Renofs_workload.Fileset

type world = {
  w_servers : int;
  w_clients : int;
  w_tier : Topology.tier;
  w_wan_fraction : float;
  w_seed : int;
}

let default_world =
  {
    w_servers = 2;
    w_clients = 6;
    w_tier = Topology.Backbone 1;
    w_wan_fraction = 0.0;
    w_seed = 0;
  }

type slo = {
  slo_p99_ms : (string * float) list;
  slo_availability : float;
  slo_window : float;
  slo_max_recovery_s : float option;
  slo_integrity : bool;
}

let default_slo =
  {
    slo_p99_ms = [];
    slo_availability = 0.0;
    slo_window = 1.0;
    slo_max_recovery_s = None;
    slo_integrity = true;
  }

type t = {
  sc_name : string;
  sc_description : string;
  sc_world : world;
  sc_load : Nhfsstone.segment list;
  sc_faults : Fault.action list;
  sc_slo : slo;
  sc_run : R.t;
}

(* ------------------------------------------------------------------ *)
(* SLO evaluation                                                      *)
(* ------------------------------------------------------------------ *)

module Slo = struct
  type breach = { b_slo : string; b_detail : string }

  type outcome = {
    o_p99_ms : float;
    o_availability : float;
    o_recovery : float;
    o_breaches : breach list;
  }

  let p99 samples =
    let samples = List.filter (fun v -> not (Float.is_nan v)) samples in
    match List.sort Float.compare samples with
    | [] -> 0.0
    | sorted ->
        let n = List.length sorted in
        let rank = int_of_float (Float.ceil (0.99 *. float_of_int n)) - 1 in
        List.nth sorted (max 0 (min (n - 1) rank))

  let availability ~window records =
    let relevant =
      List.filter_map
        (fun r ->
          match r.Trace.ev with
          | Trace.Rpc_send _ | Trace.Rpc_retransmit _ ->
              Some (r.Trace.time, `Send)
          | Trace.Rpc_reply _ -> Some (r.Trace.time, `Reply)
          | _ -> None)
        records
    in
    match relevant with
    | [] -> 1.0
    | (first, _) :: _ ->
        let t0 =
          List.fold_left (fun acc (t, _) -> Float.min acc t) first relevant
        in
        let sends = Hashtbl.create 64 and replies = Hashtbl.create 64 in
        List.iter
          (fun (t, kind) ->
            let w = int_of_float ((t -. t0) /. window) in
            match kind with
            | `Send -> Hashtbl.replace sends w ()
            | `Reply -> Hashtbl.replace replies w ())
          relevant;
        let judged = Hashtbl.length sends in
        if judged = 0 then 1.0
        else
          let available =
            Hashtbl.fold
              (fun w () acc -> if Hashtbl.mem replies w then acc + 1 else acc)
              sends 0
          in
          float_of_int available /. float_of_int judged

  let class_name cls = if cls = "*" then "all" else cls

  let evaluate slo ~server_nodes ~read_back records =
    let breaches = ref [] in
    let breach b_slo b_detail =
      (* One breach per SLO name: a two-server durability failure is
         one violated SLO, not two rows of noise. *)
      if not (List.exists (fun b -> b.b_slo = b_slo) !breaches) then
        breaches := { b_slo; b_detail } :: !breaches
    in
    let spans = Trace.Report.spans records in
    let totals_ms cls =
      List.filter_map
        (fun sp ->
          if cls = "*" || Trace.proc_name sp.Trace.Report.sp_proc = cls then
            Some (sp.Trace.Report.sp_total *. 1000.0)
          else None)
        spans
    in
    let overall = p99 (totals_ms "*") in
    List.iter
      (fun (cls, ceiling) ->
        match totals_ms cls with
        | [] -> ()
        | samples ->
            let q = p99 samples in
            if q > ceiling then
              breach
                ("p99-" ^ class_name cls)
                (Printf.sprintf "p99 %.1f ms > ceiling %.1f ms over %d calls" q
                   ceiling (List.length samples)))
      slo.slo_p99_ms;
    let avail = availability ~window:slo.slo_window records in
    if avail < slo.slo_availability then
      breach "availability"
        (Printf.sprintf "%.1f%% of %.1fs windows available < floor %.1f%%"
           (avail *. 100.0) slo.slo_window (slo.slo_availability *. 100.0));
    let at_node node = List.filter (fun r -> r.Trace.node = node) records in
    let recovery =
      List.fold_left
        (fun acc node -> Float.max acc (Fault.Check.recovery_time (at_node node)))
        0.0 server_nodes
    in
    (match slo.slo_max_recovery_s with
    | Some ceiling when recovery > ceiling ->
        breach "recovery"
          (Printf.sprintf "worst crash-to-service gap %.2f s > ceiling %.2f s"
             recovery ceiling)
    | _ -> ());
    if slo.slo_integrity then begin
      let check v =
        if not v.Fault.Check.v_ok then
          breach ("integrity:" ^ v.Fault.Check.v_name) v.Fault.Check.v_detail
      in
      List.iter
        (fun node ->
          let recs = at_node node in
          check (Fault.Check.durable_writes ~read_back:(read_back ~node) recs);
          check (Fault.Check.no_double_effect recs))
        server_nodes;
      check (Fault.Check.hard_mount_errors records);
      check (Fault.Check.no_stale_lease_reads records)
    end;
    {
      o_p99_ms = overall;
      o_availability = avail;
      o_recovery = recovery;
      o_breaches = List.rev !breaches;
    }
end

(* ------------------------------------------------------------------ *)
(* JSON decoding                                                       *)
(* ------------------------------------------------------------------ *)

let bad fmt = Printf.ksprintf (fun msg -> raise (Json.Bad msg)) fmt

let reject_unknown ~ctx known fields =
  List.iter
    (fun (k, _) ->
      if not (List.mem k known) then bad "%s: unknown field %S" ctx k)
    fields

let num_field ~ctx fields name default =
  match Json.member_opt name fields with
  | None -> default
  | Some j -> Json.num ~ctx:(ctx ^ "." ^ name) j

let int_field ~ctx fields name default =
  int_of_float (num_field ~ctx fields name (float_of_int default))

let tier_of_string ~ctx s =
  let fail () = bad "%s: bad tier %S (want \"backbone:N\" or \"fat-tree:SxL\")" ctx s in
  match String.split_on_char ':' s with
  | [ "backbone"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Topology.Backbone n
      | _ -> fail ())
  | [ "fat-tree"; sl ] -> (
      match String.split_on_char 'x' sl with
      | [ sp; lv ] -> (
          match (int_of_string_opt sp, int_of_string_opt lv) with
          | Some spines, Some leaves when spines >= 1 && leaves >= 1 ->
              Topology.Fat_tree { spines; leaves }
          | _ -> fail ())
      | _ -> fail ())
  | _ -> fail ()

let world_of_json ~ctx j =
  let fields = Json.obj ~ctx j in
  reject_unknown ~ctx [ "servers"; "clients"; "tier"; "wan_fraction"; "seed" ]
    fields;
  let w =
    {
      w_servers = int_field ~ctx fields "servers" default_world.w_servers;
      w_clients = int_field ~ctx fields "clients" default_world.w_clients;
      w_tier =
        (match Json.member_opt "tier" fields with
        | None -> default_world.w_tier
        | Some j ->
            let c = ctx ^ ".tier" in
            tier_of_string ~ctx:c (Json.str ~ctx:c j));
      w_wan_fraction = num_field ~ctx fields "wan_fraction" 0.0;
      w_seed = int_field ~ctx fields "seed" 0;
    }
  in
  if w.w_servers < 1 || w.w_servers > 90 then
    bad "%s.servers: want 1..90 (got %d)" ctx w.w_servers;
  if w.w_clients < 1 then bad "%s.clients: want at least 1" ctx;
  if w.w_wan_fraction < 0.0 || w.w_wan_fraction > 1.0 then
    bad "%s.wan_fraction: want within [0,1]" ctx;
  w

let segment_of_json ~ctx i j =
  let ctx = Printf.sprintf "%s[%d]" ctx i in
  let fields = Json.obj ~ctx j in
  reject_unknown ~ctx [ "label"; "duration"; "rate"; "rate_end"; "mix" ] fields;
  let duration = num_field ~ctx fields "duration" nan in
  if Float.is_nan duration then bad "%s: missing field duration" ctx;
  if duration <= 0.0 then bad "%s.duration: want > 0" ctx;
  let rate = num_field ~ctx fields "rate" nan in
  if Float.is_nan rate then bad "%s: missing field rate" ctx;
  if rate < 0.0 then bad "%s.rate: want >= 0" ctx;
  let mix_name =
    match Json.member_opt "mix" fields with
    | None -> "default"
    | Some j -> Json.str ~ctx:(ctx ^ ".mix") j
  in
  let mix =
    match Nhfsstone.mix_of_name mix_name with
    | Some m -> m
    | None ->
        bad "%s.mix: unknown mix %S (one of %s)" ctx mix_name
          (String.concat ", " Nhfsstone.mix_names)
  in
  {
    Nhfsstone.sg_label =
      (match Json.member_opt "label" fields with
      | None -> Printf.sprintf "seg%d" i
      | Some j -> Json.str ~ctx:(ctx ^ ".label") j);
    sg_duration = duration;
    sg_rate = rate;
    sg_rate_end =
      (match Json.member_opt "rate_end" fields with
      | None -> None
      | Some j -> Some (Json.num ~ctx:(ctx ^ ".rate_end") j));
    sg_mix = mix;
  }

let slo_of_json ~ctx j =
  let fields = Json.obj ~ctx j in
  reject_unknown ~ctx
    [ "p99_ms"; "availability"; "window"; "max_recovery_s"; "integrity" ]
    fields;
  let s =
    {
      slo_p99_ms =
        (match Json.member_opt "p99_ms" fields with
        | None -> []
        | Some j ->
            let c = ctx ^ ".p99_ms" in
            List.map
              (fun (cls, v) -> (cls, Json.num ~ctx:(c ^ "." ^ cls) v))
              (Json.obj ~ctx:c j));
      slo_availability = num_field ~ctx fields "availability" 0.0;
      slo_window = num_field ~ctx fields "window" default_slo.slo_window;
      slo_max_recovery_s =
        (match Json.member_opt "max_recovery_s" fields with
        | None -> None
        | Some j -> Some (Json.num ~ctx:(ctx ^ ".max_recovery_s") j));
      slo_integrity =
        (match Json.member_opt "integrity" fields with
        | None -> default_slo.slo_integrity
        | Some (Json.Bool b) -> b
        | Some _ -> bad "%s.integrity: expected true or false" ctx);
    }
  in
  if s.slo_availability < 0.0 || s.slo_availability > 1.0 then
    bad "%s.availability: want within [0,1]" ctx;
  if s.slo_window <= 0.0 then bad "%s.window: want > 0" ctx;
  List.iter
    (fun (_, v) -> if v < 0.0 then bad "%s.p99_ms: ceilings must be >= 0" ctx)
    s.slo_p99_ms;
  s

let of_json_exn doc =
  let ctx = "scenario" in
  let fields = Json.obj ~ctx doc in
  reject_unknown ~ctx
    [ "schema"; "name"; "description"; "world"; "load"; "faults"; "slo"; "run" ]
    fields;
  (match Json.member ~ctx "schema" fields with
  | Json.Str "renofs-scenario/1" -> ()
  | Json.Str other ->
      bad "unsupported schema %S (want \"renofs-scenario/1\")" other
  | _ -> bad "%s.schema: expected a string" ctx);
  let load_ctx = ctx ^ ".load" in
  let load =
    List.mapi
      (segment_of_json ~ctx:load_ctx)
      (Json.arr ~ctx:load_ctx (Json.member ~ctx "load" fields))
  in
  if load = [] then bad "%s.load: want at least one segment" ctx;
  {
    sc_name = Json.str ~ctx:(ctx ^ ".name") (Json.member ~ctx "name" fields);
    sc_description =
      (match Json.member_opt "description" fields with
      | None -> ""
      | Some j -> Json.str ~ctx:(ctx ^ ".description") j);
    sc_world =
      (match Json.member_opt "world" fields with
      | None -> default_world
      | Some j -> world_of_json ~ctx:(ctx ^ ".world") j);
    sc_load = load;
    sc_faults =
      (match Json.member_opt "faults" fields with
      | None -> []
      | Some j ->
          List.map Fault.action_of_json (Json.arr ~ctx:(ctx ^ ".faults") j));
    sc_slo =
      (match Json.member_opt "slo" fields with
      | None -> default_slo
      | Some j -> slo_of_json ~ctx:(ctx ^ ".slo") j);
    sc_run =
      (match Json.member_opt "run" fields with
      | None -> R.empty
      | Some j -> R.of_json ~ctx:(ctx ^ ".run") (Json.obj ~ctx:(ctx ^ ".run") j));
  }

let of_json doc = try Ok (of_json_exn doc) with Json.Bad msg -> Error msg

let parse text =
  match Json.parse text with Error _ as e -> e | Ok doc -> of_json doc

let load_file path = Json.decode_file path of_json_exn

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

let seg ?rate_end ?(mix = Nhfsstone.default_mix) label duration rate =
  {
    Nhfsstone.sg_label = label;
    sg_duration = duration;
    sg_rate = rate;
    sg_rate_end = rate_end;
    sg_mix = mix;
  }

let diurnal =
  {
    sc_name = "diurnal";
    sc_description =
      "overnight quiet, morning ramp, daytime plateau, evening bulk backup";
    sc_world = default_world;
    sc_load =
      [
        seg "night" 6.0 2.0 ~mix:Nhfsstone.read_lookup_mix;
        seg "morning" 6.0 2.0 ~rate_end:8.0;
        seg "day" 8.0 8.0;
        seg "evening" 6.0 8.0 ~rate_end:2.0 ~mix:Nhfsstone.read_lookup_mix;
        seg "backup" 6.0 4.0 ~mix:Nhfsstone.bulk_mix;
      ];
    sc_faults = [];
    sc_slo =
      {
        default_slo with
        slo_p99_ms = [ ("*", 200.0); ("lookup", 150.0) ];
        slo_availability = 0.99;
      };
    sc_run = R.empty;
  }

let flash_crowd =
  {
    sc_name = "flash-crowd";
    sc_description = "8x request spike rising in seconds, then decaying";
    sc_world = default_world;
    sc_load =
      [
        seg "baseline" 6.0 3.0 ~mix:Nhfsstone.read_lookup_mix;
        seg "spike" 2.0 3.0 ~rate_end:24.0 ~mix:Nhfsstone.lookup_mix;
        seg "sustained" 6.0 24.0 ~mix:Nhfsstone.lookup_mix;
        seg "decay" 4.0 24.0 ~rate_end:3.0 ~mix:Nhfsstone.read_lookup_mix;
        seg "tail" 4.0 3.0 ~mix:Nhfsstone.read_lookup_mix;
      ];
    sc_faults = [];
    sc_slo =
      {
        default_slo with
        slo_p99_ms = [ ("*", 500.0) ];
        slo_availability = 0.97;
      };
    sc_run = R.empty;
  }

let crash_at_peak =
  {
    sc_name = "crash-at-peak";
    sc_description = "server0 crashes at the daily peak and reboots 3s later";
    sc_world = default_world;
    sc_load =
      [
        seg "warm" 6.0 3.0;
        seg "climb" 4.0 3.0 ~rate_end:9.0;
        seg "peak" 10.0 9.0;
        seg "cool" 6.0 9.0 ~rate_end:3.0 ~mix:Nhfsstone.read_lookup_mix;
      ];
    sc_faults =
      [ Fault.Server_crash { at = 12.0; downtime = 3.0; server = "server0" } ];
    sc_slo =
      {
        default_slo with
        slo_p99_ms = [ ("*", 2000.0) ];
        slo_availability = 0.8;
        slo_max_recovery_s = Some 10.0;
      };
    sc_run = R.empty;
  }

let flapping_wan =
  {
    sc_name = "flapping-wan";
    sc_description = "half the clients on 56K lines that flap during the day";
    sc_world = { default_world with w_wan_fraction = 0.5 };
    sc_load =
      [
        seg "steady" 10.0 3.0 ~mix:Nhfsstone.lookup_mix;
        seg "afternoon" 8.0 3.0 ~mix:Nhfsstone.read_lookup_mix;
        seg "winddown" 6.0 3.0 ~rate_end:1.0 ~mix:Nhfsstone.lookup_mix;
      ];
    sc_faults =
      [
        Fault.Link_down { at = 4.0; duration = 1.5; link = "cl1" };
        Fault.Link_down { at = 9.0; duration = 1.5; link = "cl3" };
        Fault.Link_down { at = 14.0; duration = 1.5; link = "cl5" };
        Fault.Link_down { at = 18.0; duration = 1.0; link = "cl1" };
      ];
    sc_slo =
      {
        default_slo with
        slo_p99_ms = [ ("*", 4000.0) ];
        slo_availability = 0.9;
      };
    sc_run = R.empty;
  }

let background_corruption =
  {
    sc_name = "background-corruption";
    sc_description =
      "2% wire corruption all day; checksums + retransmission absorb it";
    sc_world = default_world;
    sc_load =
      [
        seg "steady" 10.0 5.0;
        seg "bulk" 6.0 4.0 ~mix:Nhfsstone.bulk_mix;
        seg "tail" 4.0 3.0 ~mix:Nhfsstone.read_lookup_mix;
      ];
    sc_faults =
      [
        Fault.Corrupt
          { at = 0.5; duration = 18.0; link = "*"; rate = 0.02; seed = 11 };
      ];
    sc_slo =
      {
        default_slo with
        slo_p99_ms = [ ("*", 2500.0) ];
        slo_availability = 0.95;
      };
    sc_run = R.empty;
  }

let builtins =
  [ diurnal; flash_crowd; crash_at_peak; flapping_wan; background_corruption ]

let builtin_names = List.map (fun sc -> sc.sc_name) builtins
let find_builtin name = List.find_opt (fun sc -> sc.sc_name = name) builtins

let resolve name =
  match find_builtin name with
  | Some sc -> Ok sc
  | None when Sys.file_exists name -> load_file name
  | None ->
      Error
        (Printf.sprintf "%s: not a builtin scenario or a file (builtins: %s)"
           name
           (String.concat ", " builtin_names))

(* ------------------------------------------------------------------ *)
(* The runner cell                                                     *)
(* ------------------------------------------------------------------ *)

let txt s = E.Text s
let sec2 v = E.Float (v, E.Sec, 2)
let count n = E.Int (n, E.Count)
let rate1 v = E.Float (v, E.Per_sec, 1)
let ms1 v = E.Float (v, E.Ms, 1)
let pct1 v = E.Float (v *. 100.0, E.Percent, 1)

(* Small per-shard tree: every client preloads its own copy, so the
   fileset is sized for clients x shards, not one mount. *)
let scenario_fileset =
  Fileset.generate ~dirs:3 ~files_per_dir:4 ~file_size:8192 ~long_names:false

let attach_observers (ctx : E.ctx) sim topo label =
  (match ctx.E.profile with
  | None -> ()
  | Some p ->
      let probe = Some (Renofs_profile.Profile.probe p) in
      Sim.set_probe sim probe;
      (match ctx.E.trace with
      | Some tr -> Trace.set_probe tr probe
      | None -> ()));
  (match ctx.E.trace with
  | None -> ()
  | Some tr -> Trace.mark tr ~time:(Sim.now sim) label);
  let run =
    match ctx.E.metrics with
    | None -> None
    | Some mt -> Some (Metrics.start_run mt ~sim ~label:ctx.E.cell_label)
  in
  let obs =
    {
      Node.trace = ctx.E.trace;
      metrics = run;
      pool = Some (Renofs_mbuf.Mbuf.Pool.create ());
    }
  in
  List.iter (fun n -> Node.attach n obs) topo.Topology.all

let cell sc =
  let label = "slo/" ^ sc.sc_name in
  {
    E.cell_label = label;
    cell_run =
      (fun ctx ->
        (* The SLO evaluator needs the event stream even when the
           caller did not ask for a trace: give the run a private
           sink. *)
        let sink =
          match ctx.E.trace with
          | Some tr -> tr
          | None -> Trace.create ~capacity:(1 lsl 18) ()
        in
        let ctx = { ctx with E.trace = Some sink } in
        let w = sc.sc_world in
        let sim = Sim.create () in
        let params =
          if w.w_seed = 0 then Topology.default_params
          else { Topology.default_params with Topology.seed = w.w_seed }
        in
        let topo =
          Topology.build_graph sim
            {
              Topology.g_servers = w.w_servers;
              g_clients = w.w_clients;
              g_tier = w.w_tier;
              g_wan_fraction = w.w_wan_fraction;
              g_params = params;
            }
        in
        attach_observers ctx sim topo label;
        (* Provisioning and the mount storm are setup, not the day:
           keep the sink quiet until the load program starts, so the
           SLO windows and the durability ledger cover the scenario
           only.  The Run_mark above predates the gate. *)
        Trace.set_enabled sink false;
        let fleet =
          Fleet.create ~policy:Fleet.Hash ~shards:w.w_clients
            topo.Topology.servers
        in
        let ready = Proc.Ivar.create sim in
        Proc.spawn sim (fun () ->
            Fleet.provision fleet;
            Fleet.iter_shards fleet (fun ~shard ~server ->
                Fileset.preload_under server ~path:shard scenario_fileset);
            Proc.Ivar.fill ready ());
        let mounted = ref 0 in
        let go = Proc.Ivar.create sim in
        let results = Array.make w.w_clients None in
        List.iteri
          (fun i client ->
            let cudp = Udp.install client in
            Proc.spawn sim (fun () ->
                Proc.Ivar.read ready;
                (* Stagger the mount storm a little, as rc.local would. *)
                Proc.sleep sim (float_of_int i *. 0.003);
                let m =
                  Fleet.mount_shard fleet ~udp:cudp
                    ~shard:(Printf.sprintf "/home%d" i)
                    Nfs_client.reno_mount
                in
                incr mounted;
                Proc.Ivar.read go;
                let r =
                  Nhfsstone.run_program m scenario_fileset
                    {
                      Nhfsstone.pg_segments = sc.sc_load;
                      pg_children = 1;
                      pg_seed = (w.w_seed * 8191) + 31 + (i * 7919);
                    }
                in
                results.(i) <- Some (r, Sim.now sim)))
          topo.Topology.clients;
        (* The day starts when every client is mounted: open the trace
           gate, arm the fault timeline (action times are relative to
           load start) and release the clients together. *)
        let t_start = ref 0.0 in
        Proc.spawn sim (fun () ->
            Proc.Ivar.read ready;
            while !mounted < w.w_clients do
              Proc.sleep sim 0.05
            done;
            Trace.set_enabled sink true;
            t_start := Sim.now sim;
            if sc.sc_faults <> [] then
              Fault.install
                {
                  Fault.sim;
                  nodes = topo.Topology.all;
                  servers = Fleet.servers fleet;
                  trace = Some sink;
                }
                {
                  Fault.name = sc.sc_name;
                  description = sc.sc_description;
                  actions = sc.sc_faults;
                };
            Proc.Ivar.fill go ());
        let guard = ref 0 in
        while Array.exists Option.is_none results do
          incr guard;
          if !guard > 100_000 then
            raise
              (E.Driver_stuck
                 (Printf.sprintf
                    "%s: driver never finished after %d advance windows (sim \
                     time %.1f s, %d events pending, %d processed)"
                    label !guard (Sim.now sim) (Sim.pending_events sim)
                    (Sim.events_processed sim)));
          Sim.run ~until:(Sim.now sim +. 50.0) sim
        done;
        (* The day's elapsed time is load start to the last client's
           finish — the drive loop overshoots by up to one window. *)
        let elapsed =
          Array.fold_left
            (fun acc r -> Float.max acc (snd (Option.get r) -. !t_start))
            0.0 results
        in
        let ops =
          Array.fold_left
            (fun acc r -> acc + (fst (Option.get r)).Nhfsstone.ops_completed)
            0 results
        in
        let achieved =
          Array.fold_left
            (fun acc r -> acc +. (fst (Option.get r)).Nhfsstone.achieved)
            0.0 results
        in
        let fss =
          List.map
            (fun srv -> (Node.id (Nfs_server.node srv), Nfs_server.fs srv))
            (Fleet.servers fleet)
        in
        let read_back ~node ~file ~off ~len =
          match List.assoc_opt node fss with
          | None -> None
          | Some fs -> (
              try Some (Fs.read fs (Fs.vnode_by_ino fs file) ~off ~len)
              with _ -> None)
        in
        let records = Trace.to_list sink in
        let o =
          Slo.evaluate sc.sc_slo ~server_nodes:(List.map fst fss) ~read_back
            records
        in
        let verdict =
          match o.Slo.o_breaches with
          | [] -> "PASS"
          | bs ->
              "FAIL:"
              ^ String.concat "," (List.map (fun b -> b.Slo.b_slo) bs)
        in
        [
          txt sc.sc_name;
          sec2 elapsed;
          count ops;
          rate1 achieved;
          ms1 o.Slo.o_p99_ms;
          pct1 o.Slo.o_availability;
          ms1 (o.Slo.o_recovery *. 1000.0);
          txt verdict;
        ]);
  }

let suite_spec scenarios =
  {
    E.sp_id = "slo";
    sp_title = "Day-in-the-life scenarios: SLO verdicts";
    sp_header =
      [
        "scenario";
        "elapsed(s)";
        "ops";
        "achieved(op/s)";
        "p99(ms)";
        "avail(%)";
        "recovery(ms)";
        "verdict";
      ];
    sp_cells = List.map cell scenarios;
    sp_assemble = (fun outs -> outs);
  }

let failures (results : E.results) =
  List.filter_map
    (fun row ->
      match (List.nth_opt row 0, List.rev row) with
      | Some (E.Text name), E.Text verdict :: _
        when String.length verdict >= 4 && String.sub verdict 0 4 = "FAIL" ->
          Some (name ^ ": " ^ verdict)
      | _ -> None)
    results.E.r_rows
