(* Cache policies: the Section 5 story.  Run the Create-Delete benchmark
   under each write policy, then a small Andrew benchmark under the
   three client profiles, and watch the RPC mix change.

     dune exec examples/cache_policies.exe *)

module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Topology = Renofs_net.Topology
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Nfs_server = Renofs_core.Nfs_server
module Nfs_client = Renofs_core.Nfs_client
open Renofs_workload

let with_mount ?(profile = Nfs_server.reno_profile) opts body =
  let sim = Sim.create () in
  let topo = Topology.build sim Topology.default_spec in
  let sudp = Udp.install topo.Topology.server in
  let stcp = Tcp.install topo.Topology.server in
  let server = Nfs_server.create topo.Topology.server ~profile ~udp:sudp ~tcp:stcp () in
  Nfs_server.start server;
  let cudp = Udp.install topo.Topology.client in
  let ctcp = Tcp.install topo.Topology.client in
  let result = ref None in
  Proc.spawn sim (fun () ->
      let m =
        Nfs_client.mount ~udp:cudp ~tcp:ctcp ~server:(Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server) opts
      in
      result := Some (body m));
  Sim.run ~until:100_000.0 sim;
  Option.get !result

let () =
  print_endline "Create-Delete of a 100 Kbyte file (msec per iteration):";
  List.iter
    (fun (name, opts) ->
      let ms =
        with_mount opts (fun m ->
            Create_delete.run_nfs m { Create_delete.data_bytes = 102400; iterations = 8 })
      in
      Printf.printf "  %-22s %7.1f ms\n" name ms)
    [
      ("write-through", { Nfs_client.reno_mount with Nfs_client.write_policy = Nfs_client.Write_through });
      ("async, 4 biods", { Nfs_client.reno_mount with Nfs_client.write_policy = Nfs_client.Async });
      ("delayed (BSD default)", Nfs_client.reno_mount);
      ("no push-on-close", Nfs_client.reno_nopush_mount);
      ("noconsist", Nfs_client.noconsist_mount);
    ];

  print_endline "\nModified Andrew Benchmark RPC counts by client profile:";
  let cfg =
    { Andrew.default_config with Andrew.source_files = 15; header_files = 6;
      compile_instructions_per_byte = 100.0 }
  in
  Printf.printf "  %-16s %8s %8s %8s %8s\n" "profile" "lookup" "getattr" "read" "write";
  List.iter
    (fun (name, opts, profile) ->
      let r = with_mount ~profile opts (fun m -> Andrew.run m ~config:cfg ()) in
      let c n = try List.assoc n r.Andrew.rpc_counts with Not_found -> 0 in
      Printf.printf "  %-16s %8d %8d %8d %8d\n" name (c "lookup") (c "getattr")
        (c "read") (c "write"))
    [
      ("Reno", Nfs_client.reno_mount, Nfs_server.reno_profile);
      ("Reno-noconsist", Nfs_client.noconsist_mount, Nfs_server.reno_profile);
      ("Ultrix-like", Nfs_client.ultrix_mount, Nfs_server.reference_port_profile);
    ];
  print_endline "\n(name caching halves lookups; disabling consistency halves writes;";
  print_endline " Reno's push-before-read costs extra read RPCs after its own writes)"
