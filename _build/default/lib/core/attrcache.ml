module Sim = Renofs_engine.Sim

type entry = { attr : Nfs_proto.fattr; stamp : float }

type t = {
  sim : Sim.t;
  timeout : float;
  table : (int, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create sim ?(timeout = 5.0) () =
  { sim; timeout; table = Hashtbl.create 64; hits = 0; misses = 0 }

let get t fh =
  match Hashtbl.find_opt t.table fh with
  | Some e when Sim.now t.sim -. e.stamp <= t.timeout ->
      t.hits <- t.hits + 1;
      Some e.attr
  | Some _ ->
      Hashtbl.remove t.table fh;
      t.misses <- t.misses + 1;
      None
  | None ->
      t.misses <- t.misses + 1;
      None

let peek t fh =
  match Hashtbl.find_opt t.table fh with Some e -> Some e.attr | None -> None

let update t fh attr =
  Hashtbl.replace t.table fh { attr; stamp = Sim.now t.sim }

let invalidate t fh = Hashtbl.remove t.table fh
let purge t = Hashtbl.reset t.table
let hits t = t.hits
let misses t = t.misses
