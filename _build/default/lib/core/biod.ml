module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc

type t = {
  count : int;
  jobs : (unit -> unit) Proc.Mailbox.t;
  mutable jobs_run : int;
}

let create sim ~count =
  if count < 0 then invalid_arg "Biod.create: negative count";
  let t = { count; jobs = Proc.Mailbox.create sim; jobs_run = 0 } in
  for _ = 1 to count do
    Proc.spawn sim (fun () ->
        let rec serve () =
          let job = Proc.Mailbox.recv t.jobs in
          job ();
          t.jobs_run <- t.jobs_run + 1;
          serve ()
        in
        serve ())
  done;
  t

let count t = t.count

let submit t job =
  if t.count = 0 then begin
    job ();
    t.jobs_run <- t.jobs_run + 1
  end
  else Proc.Mailbox.send t.jobs job

let queued t = Proc.Mailbox.length t.jobs
let jobs_run t = t.jobs_run
