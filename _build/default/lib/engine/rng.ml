type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: n is tiny compared to 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t x =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits /. 9007199254740992.0 *. x

let uniform t lo hi = lo +. float t (hi -. lo)
let bool t = Int64.logand (bits64 t) 1L = 1L
let chance t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
