module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Rng = Renofs_engine.Rng
module Stats = Renofs_engine.Stats
module Nfs_client = Renofs_core.Nfs_client
module Client_transport = Renofs_core.Client_transport

type op = Op_lookup | Op_read | Op_getattr | Op_write | Op_readdir

type mix = (op * float) list

let lookup_mix = [ (Op_lookup, 1.0) ]
let read_lookup_mix = [ (Op_read, 0.5); (Op_lookup, 0.5) ]

(* Nhfsstone's stock mix, restricted to the operations we generate and
   renormalised (writes at the 8% default the paper quotes).  Because
   the mix writes, the subtree changes during a run — hence the
   appendix's caveat that it must be preloaded before each test. *)
let default_mix =
  [
    (Op_lookup, 0.425);
    (Op_read, 0.275);
    (Op_getattr, 0.1625);
    (Op_write, 0.1);
    (Op_readdir, 0.0375);
  ]

(* Sustained bulk-transfer phases (the xDFS-style file-movement
   workload): read/write dominated, a sliver of lookups to keep name
   traffic alive. *)
let bulk_mix = [ (Op_read, 0.45); (Op_write, 0.45); (Op_lookup, 0.10) ]

let mix_of_name = function
  | "lookup" -> Some lookup_mix
  | "read-lookup" -> Some read_lookup_mix
  | "default" -> Some default_mix
  | "bulk" -> Some bulk_mix
  | _ -> None

let mix_names = [ "lookup"; "read-lookup"; "default"; "bulk" ]

type config = {
  rate : float;
  duration : float;
  children : int;
  mix : mix;
  seed : int;
}

type result = {
  offered : float;
  achieved : float;
  ops_completed : int;
  mean_rtt : float;
  rtt_by_proc : (string * float * int) list;
  retransmits : int;
  read_rate : float;
  mean_op_latency : float;
}

let pick_op rng mix =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix in
  let x = Rng.float rng total in
  let rec go acc = function
    | [] -> Op_lookup
    | (op, w) :: rest -> if x < acc +. w then op else go (acc +. w) rest
  in
  go 0.0 mix

(* Shared per-run op machinery — open-file table, counters, latency
   accounting — so the fixed-rate runner and the program runner issue
   byte-identical operations; they differ only in pacing and in which
   mix each op draws from.  The RNG draw sequence per op (file pick,
   mix pick, read offset) must not change: the committed bench
   baselines depend on it. *)
type engine = {
  en_one_op : Rng.t -> mix -> unit;
  en_completed : int ref;
  en_reads : int ref;
  en_latency : Stats.Welford.t;
}

let make_engine ?latency_hist ~who mount fileset =
  let sim = Nfs_client.sim mount in
  let files = Array.of_list fileset.Fileset.files in
  if Array.length files = 0 then invalid_arg (who ^ ": empty fileset");
  let completed = ref 0 and reads_done = ref 0 in
  let op_latency = Stats.Welford.create () in
  (* Shared open-file table, filled lazily. *)
  let fds = Hashtbl.create 64 in
  let fd_of path =
    match Hashtbl.find_opt fds path with
    | Some fd -> fd
    | None ->
        let fd = Nfs_client.open_ mount path in
        Hashtbl.replace fds path fd;
        fd
  in
  let one_op rng mix =
    let path = files.(Rng.int rng (Array.length files)) in
    let t0 = Sim.now sim in
    let op = pick_op rng mix in
    (try
       match op with
       | Op_lookup | Op_getattr -> ignore (Nfs_client.stat mount path)
       | Op_read ->
           let fd = fd_of path in
           let max_blk = max 1 (fileset.Fileset.file_size / 8192) in
           let off = Rng.int rng max_blk * 8192 in
           ignore (Nfs_client.read mount fd ~off ~len:8192);
           incr reads_done
       | Op_write ->
           let fd = fd_of path in
           Nfs_client.write mount fd ~off:0 (Bytes.make 8192 'w');
           Nfs_client.fsync mount fd
       | Op_readdir -> (
           match String.index_opt path '/' with
           | Some i -> ignore (Nfs_client.readdir mount (String.sub path 0 i))
           | None -> ())
     with Nfs_client.Nfs_error _ | Client_transport.Rpc_error _ -> ());
    incr completed;
    let dt = Sim.now sim -. t0 in
    Stats.Welford.add op_latency dt;
    match latency_hist with
    | Some h -> Stats.Hist.add h (dt *. 1000.0)
    | None -> ()
  in
  {
    en_one_op = one_op;
    en_completed = completed;
    en_reads = reads_done;
    en_latency = op_latency;
  }

let finish ~offered ~duration ~before ~xport engine =
  let after = Client_transport.summary xport in
  let rtts =
    Client_transport.rtt_by_proc xport
    |> List.map (fun (name, w) -> (name, Stats.Welford.mean w, Stats.Welford.count w))
  in
  {
    offered;
    achieved = float_of_int !(engine.en_completed) /. duration;
    ops_completed = !(engine.en_completed);
    mean_rtt = after.Client_transport.mean_rtt;
    rtt_by_proc = rtts;
    retransmits =
      after.Client_transport.retransmits - before.Client_transport.retransmits;
    read_rate = float_of_int !(engine.en_reads) /. duration;
    mean_op_latency = Stats.Welford.mean engine.en_latency;
  }

let run ?latency_hist mount fileset config =
  let sim = Nfs_client.sim mount in
  let engine = make_engine ?latency_hist ~who:"Nhfsstone.run" mount fileset in
  let xport = Nfs_client.transport mount in
  let before = Client_transport.summary xport in
  let children = max 1 config.children in
  let stop_at = Sim.now sim +. config.duration in
  let child_rate = config.rate /. float_of_int children in
  let finished = ref 0 in
  let all_done = Proc.Ivar.create sim in
  for i = 1 to children do
    let crng = Rng.create (config.seed + (i * 7919)) in
    Proc.spawn sim (fun () ->
        let rec loop () =
          if Sim.now sim < stop_at then begin
            Proc.sleep sim (Rng.exponential crng (1.0 /. child_rate));
            if Sim.now sim < stop_at then engine.en_one_op crng config.mix;
            loop ()
          end
        in
        loop ();
        incr finished;
        if !finished = children then Proc.Ivar.fill all_done ())
  done;
  Proc.Ivar.read all_done;
  finish ~offered:config.rate ~duration:config.duration ~before ~xport engine

(* ------------------------------------------------------------------ *)
(* Rate-schedule programs                                             *)
(* ------------------------------------------------------------------ *)

type segment = {
  sg_label : string;
  sg_duration : float;
  sg_rate : float;
  sg_rate_end : float option;
  sg_mix : mix;
}

type program = {
  pg_segments : segment list;
  pg_children : int;
  pg_seed : int;
}

let program_duration p =
  List.fold_left (fun acc s -> acc +. s.sg_duration) 0.0 p.pg_segments

let program_mean_rate p =
  let total = program_duration p in
  if total <= 0.0 then 0.0
  else
    List.fold_left
      (fun acc s ->
        let mean =
          match s.sg_rate_end with
          | None -> s.sg_rate
          | Some re -> (s.sg_rate +. re) /. 2.0
        in
        acc +. (mean *. s.sg_duration))
      0.0 p.pg_segments
    /. total

let run_program ?latency_hist mount fileset program =
  let sim = Nfs_client.sim mount in
  if program.pg_segments = [] then
    invalid_arg "Nhfsstone.run_program: empty program";
  let engine =
    make_engine ?latency_hist ~who:"Nhfsstone.run_program" mount fileset
  in
  let xport = Nfs_client.transport mount in
  let before = Client_transport.summary xport in
  let children = max 1 program.pg_children in
  let start = Sim.now sim in
  let total = program_duration program in
  let stop_at = start +. total in
  (* Segment boundaries relative to [start]; [seg_at] clamps to the
     last segment so an op landing exactly on [stop_at] still has a
     mix. *)
  let segs =
    let t = ref 0.0 in
    List.map
      (fun s ->
        let s0 = !t in
        t := !t +. s.sg_duration;
        (s0, !t, s))
      program.pg_segments
    |> Array.of_list
  in
  let seg_at t =
    let rec go i =
      if i >= Array.length segs - 1 then segs.(Array.length segs - 1)
      else
        let (_, s1, _) = segs.(i) in
        if t < s1 then segs.(i) else go (i + 1)
    in
    go 0
  in
  (* Instantaneous offered rate: constant per segment, or a linear ramp
     from [sg_rate] to [sg_rate_end]. *)
  let rate_at (s0, s1, s) t =
    match s.sg_rate_end with
    | None -> s.sg_rate
    | Some re ->
        let w = s1 -. s0 in
        if w <= 0.0 then re
        else s.sg_rate +. ((re -. s.sg_rate) *. ((t -. s0) /. w))
  in
  let finished = ref 0 in
  let all_done = Proc.Ivar.create sim in
  for i = 1 to children do
    let crng = Rng.create (program.pg_seed + (i * 7919)) in
    Proc.spawn sim (fun () ->
        let rec loop () =
          let now = Sim.now sim in
          if now < stop_at then begin
            let ((_, s1, _) as seg) = seg_at (now -. start) in
            let rate = rate_at seg (now -. start) /. float_of_int children in
            if rate <= 1e-9 then begin
              (* Idle phase: jump to the segment boundary rather than
                 draw from an infinite-mean exponential. *)
              Proc.sleep sim (s1 -. (now -. start) +. 1e-6);
              loop ()
            end
            else begin
              Proc.sleep sim (Rng.exponential crng (1.0 /. rate));
              if Sim.now sim < stop_at then begin
                (* The op uses the mix of the segment it fires in, not
                   the one it was scheduled from. *)
                let (_, _, s) = seg_at (Sim.now sim -. start) in
                engine.en_one_op crng s.sg_mix
              end;
              loop ()
            end
          end
        in
        loop ();
        incr finished;
        if !finished = children then Proc.Ivar.fill all_done ())
  done;
  Proc.Ivar.read all_done;
  finish ~offered:(program_mean_rate program) ~duration:total ~before ~xport
    engine
