lib/transport/udp.mli: Renofs_mbuf Renofs_net
