open Renofs_vfs
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu

(* Run [body] as the only process of a fresh world and return its result. *)
let in_world ?(config = Fs.reno_config) body =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:0.9 in
  let disk = Disk.create sim () in
  let fs = Fs.create sim cpu disk config in
  let result = ref None in
  Proc.spawn sim (fun () -> result := Some (body sim fs));
  Sim.run sim;
  match !result with Some r -> r | None -> Alcotest.fail "world did not finish"

let check_err expected f =
  match f () with
  | exception Fs.Err e when e = expected -> ()
  | exception Fs.Err _ -> Alcotest.fail "wrong error"
  | _ -> Alcotest.fail "expected an error"

(* ------------------------------------------------------------------ *)
(* Disk                                                               *)
(* ------------------------------------------------------------------ *)

let test_disk_latency () =
  let sim = Sim.create () in
  let disk = Disk.create sim () in
  let t_done = ref 0.0 in
  Proc.spawn sim (fun () ->
      Disk.read disk ~bytes:8192;
      t_done := Sim.now sim);
  Sim.run sim;
  (* 30 ms seek + 8.3 ms rotation + 8192/0.6MB/s = 13.6 ms transfer. *)
  Alcotest.(check bool) "tens of ms" true (!t_done > 0.045 && !t_done < 0.06);
  Alcotest.(check int) "counted" 1 (Disk.reads disk)

let test_disk_serializes () =
  let sim = Sim.create () in
  let disk = Disk.create sim () in
  let done_times = ref [] in
  for _ = 1 to 3 do
    Proc.spawn sim (fun () ->
        Disk.write disk ~bytes:512;
        done_times := Sim.now sim :: !done_times)
  done;
  Sim.run sim;
  match List.sort compare !done_times with
  | [ a; b; c ] ->
      Alcotest.(check bool) "spread out" true (b > a +. 0.02 && c > b +. 0.02)
  | _ -> Alcotest.fail "expected three completions"

(* ------------------------------------------------------------------ *)
(* Namecache                                                          *)
(* ------------------------------------------------------------------ *)

let test_namecache_basics () =
  let nc = Namecache.create () in
  Alcotest.(check (option int)) "miss" None (Namecache.lookup nc ~dir:2 "a");
  Namecache.enter nc ~dir:2 "a" 10;
  Alcotest.(check (option int)) "hit" (Some 10) (Namecache.lookup nc ~dir:2 "a");
  Alcotest.(check (option int)) "other dir" None (Namecache.lookup nc ~dir:3 "a");
  Namecache.remove nc ~dir:2 "a";
  Alcotest.(check (option int)) "removed" None (Namecache.lookup nc ~dir:2 "a")

let test_namecache_31_char_limit () =
  let nc = Namecache.create () in
  let long = String.make 32 'x' in
  Namecache.enter nc ~dir:2 long 10;
  Alcotest.(check (option int)) "not cached" None (Namecache.lookup nc ~dir:2 long);
  Alcotest.(check int) "too_long counted" 1 (Namecache.stats nc).Namecache.too_long;
  let exactly31 = String.make 31 'y' in
  Namecache.enter nc ~dir:2 exactly31 11;
  Alcotest.(check (option int)) "31 chars cached" (Some 11)
    (Namecache.lookup nc ~dir:2 exactly31)

let test_namecache_eviction () =
  let nc = Namecache.create ~capacity:4 () in
  for i = 1 to 8 do
    Namecache.enter nc ~dir:2 (Printf.sprintf "f%d" i) i
  done;
  Alcotest.(check (option int)) "oldest evicted" None (Namecache.lookup nc ~dir:2 "f1");
  Alcotest.(check (option int)) "newest kept" (Some 8) (Namecache.lookup nc ~dir:2 "f8")

let test_namecache_invalidate_dir () =
  let nc = Namecache.create () in
  Namecache.enter nc ~dir:2 "a" 10;
  Namecache.enter nc ~dir:3 "b" 11;
  Namecache.invalidate_dir nc 2;
  Alcotest.(check (option int)) "dir 2 gone" None (Namecache.lookup nc ~dir:2 "a");
  Alcotest.(check (option int)) "dir 3 kept" (Some 11) (Namecache.lookup nc ~dir:3 "b")

(* ------------------------------------------------------------------ *)
(* Bcache                                                             *)
(* ------------------------------------------------------------------ *)

let test_bcache_hit_miss_lru () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:0.9 in
  let bc = Bcache.create sim cpu ~blocks:2 ~search:Bcache.Vnode_chained () in
  let outcome = ref [] in
  Proc.spawn sim (fun () ->
      outcome := Bcache.lookup bc ~ino:1 ~blk:0 :: !outcome;
      Bcache.insert bc ~ino:1 ~blk:0;
      Bcache.insert bc ~ino:1 ~blk:1;
      outcome := Bcache.lookup bc ~ino:1 ~blk:0 :: !outcome;
      (* Insert a third block: LRU victim is (1,1). *)
      Bcache.insert bc ~ino:2 ~blk:0;
      outcome := Bcache.lookup bc ~ino:1 ~blk:1 :: !outcome);
  Sim.run sim;
  Alcotest.(check (list bool)) "miss, hit, evicted" [ false; true; false ]
    (List.rev !outcome);
  Alcotest.(check int) "resident" 2 (Bcache.resident bc)

let test_bcache_scan_costs_more () =
  let run search =
    let sim = Sim.create () in
    let cpu = Cpu.create sim ~mips:0.9 in
    let bc = Bcache.create sim cpu ~blocks:300 ~search () in
    Proc.spawn sim (fun () ->
        for i = 1 to 250 do
          Bcache.insert bc ~ino:i ~blk:0
        done;
        for i = 1 to 250 do
          ignore (Bcache.lookup bc ~ino:i ~blk:0)
        done);
    Sim.run sim;
    Cpu.busy_time cpu
  in
  let chained = run Bcache.Vnode_chained and scan = run Bcache.Global_scan in
  Alcotest.(check bool) "global scan much dearer" true (scan > chained *. 5.0)

let test_bcache_invalidate_ino () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:1.0 in
  let bc = Bcache.create sim cpu ~blocks:8 ~search:Bcache.Vnode_chained () in
  Bcache.insert bc ~ino:1 ~blk:0;
  Bcache.insert bc ~ino:1 ~blk:1;
  Bcache.insert bc ~ino:2 ~blk:0;
  Bcache.invalidate_ino bc 1;
  Alcotest.(check int) "only ino 2 left" 1 (Bcache.resident bc)

(* ------------------------------------------------------------------ *)
(* Fs                                                                 *)
(* ------------------------------------------------------------------ *)

let test_fs_create_lookup_read_write () =
  in_world (fun _sim fs ->
      let root = Fs.root fs in
      let f = Fs.create_file fs ~dir:root "hello.txt" ~mode:0o644 () in
      Fs.write fs f ~off:0 (Bytes.of_string "hello, world");
      let v = Fs.lookup fs root "hello.txt" in
      Alcotest.(check int) "same inode" (Fs.ino f) (Fs.ino v);
      let data = Fs.read fs v ~off:0 ~len:100 in
      Alcotest.(check string) "content" "hello, world" (Bytes.to_string data);
      let a = Fs.getattr fs v in
      Alcotest.(check int) "size" 12 a.Fs.size;
      Alcotest.(check bool) "regular" true (a.Fs.kind = Fs.Reg))

let test_fs_sparse_write_and_overwrite () =
  in_world (fun _sim fs ->
      let root = Fs.root fs in
      let f = Fs.create_file fs ~dir:root "sparse" ~mode:0o644 () in
      Fs.write fs f ~off:10000 (Bytes.of_string "end");
      Alcotest.(check int) "size" 10003 (Fs.getattr fs f).Fs.size;
      let hole = Fs.read fs f ~off:5000 ~len:4 in
      Alcotest.(check string) "hole zero-filled" "\000\000\000\000" (Bytes.to_string hole);
      Fs.write fs f ~off:0 (Bytes.of_string "begin");
      let head = Fs.read fs f ~off:0 ~len:5 in
      Alcotest.(check string) "overwrite" "begin" (Bytes.to_string head))

let test_fs_read_past_eof () =
  in_world (fun _sim fs ->
      let root = Fs.root fs in
      let f = Fs.create_file fs ~dir:root "short" ~mode:0o644 () in
      Fs.write fs f ~off:0 (Bytes.of_string "abc");
      Alcotest.(check int) "short read" 2 (Bytes.length (Fs.read fs f ~off:1 ~len:100));
      Alcotest.(check int) "empty at eof" 0 (Bytes.length (Fs.read fs f ~off:3 ~len:10)))

let test_fs_errors () =
  in_world (fun _sim fs ->
      let root = Fs.root fs in
      check_err Fs.Enoent (fun () -> Fs.lookup fs root "missing");
      let f = Fs.create_file fs ~dir:root "f" ~mode:0o644 () in
      check_err Fs.Eexist (fun () -> Fs.create_file fs ~dir:root "f" ~mode:0o644 ());
      check_err Fs.Enotdir (fun () -> Fs.lookup fs f "x");
      check_err Fs.Eisdir (fun () -> Fs.read fs root ~off:0 ~len:1);
      let d = Fs.mkdir fs ~dir:root "d" ~mode:0o755 () in
      let _ = Fs.create_file fs ~dir:d "inner" ~mode:0o644 () in
      check_err Fs.Enotempty (fun () -> Fs.rmdir fs ~dir:root "d");
      check_err Fs.Eisdir (fun () -> Fs.remove fs ~dir:root "d");
      check_err Fs.Einval (fun () -> Fs.create_file fs ~dir:root "a/b" ~mode:0o644 ()))

let test_fs_remove_and_stale () =
  in_world (fun _sim fs ->
      let root = Fs.root fs in
      let f = Fs.create_file fs ~dir:root "doomed" ~mode:0o644 () in
      let i = Fs.ino f in
      Fs.remove fs ~dir:root "doomed";
      check_err Fs.Enoent (fun () -> Fs.lookup fs root "doomed");
      check_err Fs.Estale (fun () -> Fs.vnode_by_ino fs i))

let test_fs_hard_link () =
  in_world (fun _sim fs ->
      let root = Fs.root fs in
      let f = Fs.create_file fs ~dir:root "orig" ~mode:0o644 () in
      Fs.write fs f ~off:0 (Bytes.of_string "shared");
      Fs.link fs ~src:f ~dir:root "alias";
      Alcotest.(check int) "nlink 2" 2 (Fs.getattr fs f).Fs.nlink;
      Fs.remove fs ~dir:root "orig";
      let v = Fs.lookup fs root "alias" in
      Alcotest.(check string) "data survives" "shared"
        (Bytes.to_string (Fs.read fs v ~off:0 ~len:10));
      Alcotest.(check int) "nlink 1" 1 (Fs.getattr fs v).Fs.nlink)

let test_fs_rename () =
  in_world (fun _sim fs ->
      let root = Fs.root fs in
      let d1 = Fs.mkdir fs ~dir:root "d1" ~mode:0o755 () in
      let d2 = Fs.mkdir fs ~dir:root "d2" ~mode:0o755 () in
      let f = Fs.create_file fs ~dir:d1 "a" ~mode:0o644 () in
      Fs.write fs f ~off:0 (Bytes.of_string "payload");
      Fs.rename fs ~src_dir:d1 "a" ~dst_dir:d2 "b";
      check_err Fs.Enoent (fun () -> Fs.lookup fs d1 "a");
      let v = Fs.lookup fs d2 "b" in
      Alcotest.(check string) "moved intact" "payload"
        (Bytes.to_string (Fs.read fs v ~off:0 ~len:10));
      (* Rename over an existing file unlinks the victim. *)
      let _ = Fs.create_file fs ~dir:d2 "c" ~mode:0o644 () in
      Fs.rename fs ~src_dir:d2 "b" ~dst_dir:d2 "c";
      let v2 = Fs.lookup fs d2 "c" in
      Alcotest.(check int) "same inode" (Fs.ino v) (Fs.ino v2))

let test_fs_symlink () =
  in_world (fun _sim fs ->
      let root = Fs.root fs in
      Fs.symlink fs ~dir:root "ln" ~target:"/some/where" ();
      let v = Fs.lookup fs root "ln" in
      Alcotest.(check string) "target" "/some/where" (Fs.readlink fs v);
      Alcotest.(check bool) "kind" true ((Fs.getattr fs v).Fs.kind = Fs.Lnk))

let test_fs_readdir_paging () =
  in_world (fun _sim fs ->
      let root = Fs.root fs in
      for i = 0 to 24 do
        ignore (Fs.create_file fs ~dir:root (Printf.sprintf "f%02d" i) ~mode:0o644 ())
      done;
      let page1, eof1 = Fs.readdir fs root ~cookie:0 ~count:10 in
      Alcotest.(check int) "page1" 10 (List.length page1);
      Alcotest.(check bool) "not eof" false eof1;
      let page2, _ = Fs.readdir fs root ~cookie:10 ~count:10 in
      let page3, eof3 = Fs.readdir fs root ~cookie:20 ~count:10 in
      Alcotest.(check int) "page3" 5 (List.length page3);
      Alcotest.(check bool) "eof" true eof3;
      let all = List.map fst (page1 @ page2 @ page3) in
      Alcotest.(check int) "no dup" 25 (List.length (List.sort_uniq compare all)))

let test_fs_dot_and_dotdot () =
  in_world (fun _sim fs ->
      let root = Fs.root fs in
      let d = Fs.mkdir fs ~dir:root "sub" ~mode:0o755 () in
      Alcotest.(check int) "." (Fs.ino d) (Fs.ino (Fs.lookup fs d "."));
      Alcotest.(check int) ".." (Fs.ino root) (Fs.ino (Fs.lookup fs d "..")))

let test_fs_setattr_truncate () =
  in_world (fun _sim fs ->
      let root = Fs.root fs in
      let f = Fs.create_file fs ~dir:root "t" ~mode:0o644 () in
      Fs.write fs f ~off:0 (Bytes.of_string "0123456789");
      let a = Fs.setattr fs f ~size:4 () in
      Alcotest.(check int) "truncated" 4 a.Fs.size;
      Alcotest.(check string) "data cut" "0123"
        (Bytes.to_string (Fs.read fs f ~off:0 ~len:100));
      let a2 = Fs.setattr fs f ~size:8 () in
      Alcotest.(check int) "extended" 8 a2.Fs.size;
      Alcotest.(check string) "zero filled" "0123\000\000\000\000"
        (Bytes.to_string (Fs.read fs f ~off:0 ~len:100)))

let test_fs_sync_writes_hit_disk () =
  let disk_writes config =
    let sim = Sim.create () in
    let cpu = Cpu.create sim ~mips:0.9 in
    let disk = Disk.create sim () in
    let fs = Fs.create sim cpu disk config in
    Proc.spawn sim (fun () ->
        let f = Fs.create_file fs ~dir:(Fs.root fs) "w" ~mode:0o644 () in
        Fs.write fs f ~off:0 (Bytes.make 8192 'x'));
    Sim.run sim;
    Disk.writes disk
  in
  let sync = disk_writes Fs.reno_config in
  let local = disk_writes Fs.local_config in
  (* Both pay synchronous metadata for the create; only the NFS-server
     configuration also pushes the data block and inode on write. *)
  Alcotest.(check bool) "nfs server pays data writes" true (sync >= local + 2);
  Alcotest.(check bool) "local still pays metadata" true (local >= 2)

let test_fs_lookup_uses_name_cache () =
  (* Second lookup of the same name must be cheaper with the cache. *)
  let lookup_cost config =
    let sim = Sim.create () in
    let cpu = Cpu.create sim ~mips:0.9 in
    let disk = Disk.create sim () in
    let fs = Fs.create sim cpu disk config in
    let cost = ref 0.0 in
    Proc.spawn sim (fun () ->
        let root = Fs.root fs in
        (* Big directory so scans are expensive. *)
        for i = 0 to 399 do
          ignore (Fs.create_file fs ~dir:root (Printf.sprintf "file%03d" i) ~mode:0o644 ())
        done;
        ignore (Fs.lookup fs root "file399");
        let before = Cpu.busy_time cpu in
        for _ = 1 to 50 do
          ignore (Fs.lookup fs root "file399")
        done;
        cost := Cpu.busy_time cpu -. before);
    Sim.run sim;
    !cost
  in
  let with_cache = lookup_cost Fs.reno_config in
  let without = lookup_cost { Fs.reno_config with Fs.name_cache = false } in
  Alcotest.(check bool) "cache accelerates lookups" true
    (with_cache < without /. 3.0)

let test_fs_statfs () =
  in_world (fun _sim fs ->
      let st = Fs.statfs fs in
      Alcotest.(check int) "block size" 8192 st.Fs.block_size;
      Alcotest.(check bool) "free blocks sane" true
        (st.Fs.free_blocks > 0 && st.Fs.free_blocks <= st.Fs.total_blocks))

let test_fsck_clean_after_operations () =
  in_world (fun _sim fs ->
      let root = Fs.root fs in
      let d1 = Fs.mkdir fs ~dir:root "d1" ~mode:0o755 () in
      let d2 = Fs.mkdir fs ~dir:d1 "d2" ~mode:0o755 () in
      let f = Fs.create_file fs ~dir:d2 "f" ~mode:0o644 () in
      Fs.write fs f ~off:0 (Bytes.make 100 'x');
      Fs.link fs ~src:f ~dir:root "hard";
      Fs.symlink fs ~dir:root "soft" ~target:"d1/d2/f" ();
      Fs.rename fs ~src_dir:d2 "f" ~dst_dir:d1 "g";
      Fs.remove fs ~dir:root "hard";
      Alcotest.(check (list string)) "fsck clean" [] (Fs.fsck fs))

(* Property: after arbitrary sequences of namespace operations the
   filesystem invariants hold (fsck is clean). *)
let prop_fsck_random_ops =
  QCheck.Test.make ~name:"fsck clean after random namespace ops" ~count:60
    QCheck.(list_of_size Gen.(int_range 5 40) (int_bound 999))
    (fun seeds ->
      in_world (fun _sim fs ->
          let root = Fs.root fs in
          let dirs = ref [ root ] in
          let pick l n = List.nth l (n mod List.length l) in
          List.iteri
            (fun i seed ->
              let dir = pick !dirs seed in
              let name = Printf.sprintf "n%d" i in
              (* A picked directory may have been removed already; the
                 stale-handle error is the correct response then. *)
              try
                match seed mod 6 with
                | 0 -> dirs := Fs.mkdir fs ~dir name ~mode:0o755 () :: !dirs
                | 1 -> ignore (Fs.create_file fs ~dir name ~mode:0o644 ())
                | 2 -> Fs.symlink fs ~dir name ~target:"anywhere" ()
                | 3 -> (
                    (* remove a random entry if possible *)
                    match Fs.readdir fs dir ~cookie:0 ~count:100 with
                    | (victim, ino_) :: _, _ -> (
                        match (Fs.getattr fs (Fs.vnode_by_ino fs ino_)).Fs.kind with
                        | Fs.Dir -> (
                            try Fs.rmdir fs ~dir victim with Fs.Err _ -> ())
                        | Fs.Reg | Fs.Lnk -> Fs.remove fs ~dir victim
                        | exception Fs.Err _ -> ())
                    | [], _ -> ())
                | 4 -> (
                    (* hard link to a random file *)
                    match Fs.readdir fs dir ~cookie:0 ~count:100 with
                    | (existing, ino_) :: _, _ -> (
                        try
                          let v = Fs.vnode_by_ino fs ino_ in
                          if (Fs.getattr fs v).Fs.kind = Fs.Reg then
                            Fs.link fs ~src:v ~dir (existing ^ "L")
                        with Fs.Err _ -> ())
                    | [], _ -> ())
                | _ -> (
                    (* rename something into the root *)
                    match Fs.readdir fs dir ~cookie:0 ~count:100 with
                    | (victim, _) :: _, _ -> (
                        try Fs.rename fs ~src_dir:dir victim ~dst_dir:root (victim ^ "R")
                        with Fs.Err _ -> ())
                    | [], _ -> ())
              with Fs.Err Fs.Estale -> ())
            seeds;
          Fs.fsck fs = []))

(* Property: a random sequence of writes followed by reads behaves like a
   reference byte array. *)
let prop_write_read_model =
  QCheck.Test.make ~name:"fs read/write matches flat-array model" ~count:60
    QCheck.(
      list_of_size Gen.(int_range 1 20)
        (pair (int_range 0 30000) (int_range 1 2000)))
    (fun ops ->
      in_world (fun _sim fs ->
          let f = Fs.create_file fs ~dir:(Fs.root fs) "model" ~mode:0o644 () in
          let model = Bytes.make 40000 '\000' in
          let model_len = ref 0 in
          List.iteri
            (fun i (off, len) ->
              let data = Bytes.make len (Char.chr (65 + (i mod 26))) in
              Fs.write fs f ~off data;
              Bytes.blit data 0 model off len;
              if off + len > !model_len then model_len := off + len)
            ops;
          let actual = Fs.read fs f ~off:0 ~len:!model_len in
          Bytes.equal actual (Bytes.sub model 0 !model_len)))

let () =
  Alcotest.run "vfs"
    [
      ( "disk",
        [
          Alcotest.test_case "latency" `Quick test_disk_latency;
          Alcotest.test_case "serializes" `Quick test_disk_serializes;
        ] );
      ( "namecache",
        [
          Alcotest.test_case "basics" `Quick test_namecache_basics;
          Alcotest.test_case "31-char limit" `Quick test_namecache_31_char_limit;
          Alcotest.test_case "eviction" `Quick test_namecache_eviction;
          Alcotest.test_case "invalidate dir" `Quick test_namecache_invalidate_dir;
        ] );
      ( "bcache",
        [
          Alcotest.test_case "hit/miss/lru" `Quick test_bcache_hit_miss_lru;
          Alcotest.test_case "scan cost" `Quick test_bcache_scan_costs_more;
          Alcotest.test_case "invalidate ino" `Quick test_bcache_invalidate_ino;
        ] );
      ( "fs",
        [
          Alcotest.test_case "create/lookup/io" `Quick test_fs_create_lookup_read_write;
          Alcotest.test_case "sparse + overwrite" `Quick test_fs_sparse_write_and_overwrite;
          Alcotest.test_case "read past eof" `Quick test_fs_read_past_eof;
          Alcotest.test_case "errors" `Quick test_fs_errors;
          Alcotest.test_case "remove + stale handle" `Quick test_fs_remove_and_stale;
          Alcotest.test_case "hard link" `Quick test_fs_hard_link;
          Alcotest.test_case "rename" `Quick test_fs_rename;
          Alcotest.test_case "symlink" `Quick test_fs_symlink;
          Alcotest.test_case "readdir paging" `Quick test_fs_readdir_paging;
          Alcotest.test_case "dot and dotdot" `Quick test_fs_dot_and_dotdot;
          Alcotest.test_case "setattr truncate" `Quick test_fs_setattr_truncate;
          Alcotest.test_case "sync writes hit disk" `Quick test_fs_sync_writes_hit_disk;
          Alcotest.test_case "name cache accelerates" `Quick test_fs_lookup_uses_name_cache;
          Alcotest.test_case "statfs" `Quick test_fs_statfs;
          Alcotest.test_case "fsck clean" `Quick test_fsck_clean_after_operations;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_write_read_model; prop_fsck_random_ops ] );
    ]
