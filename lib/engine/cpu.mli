(** A host CPU as a non-preemptive two-priority queueing resource.

    Work is expressed in seconds of compute (derive it from instruction
    counts with {!seconds_of_instructions}).  [Interrupt]-priority work is
    always served before [Normal] work, modelling device interrupt
    handling on the MicroVAXII.  Cumulative busy time supports the
    idle-loop-counter CPU-utilization instrumentation from the paper's
    appendix. *)

type t

type priority = Interrupt | Normal

val create : Sim.t -> mips:float -> t
(** A CPU executing [mips] million instructions per second.  The paper's
    test machines are 0.9 MIPS MicroVAXIIs; the DS3100 client in Table 4
    is ~14 MIPS. *)

val mips : t -> float

val seconds_of_instructions : t -> float -> float
(** Convert an instruction count to seconds on this CPU. *)

val slowdown : t -> float

val set_slowdown : t -> float -> unit
(** Multiply all subsequently queued work by [factor] (default 1.0;
    must be positive).  Fault schedules use this to model a server CPU
    degraded for an interval; work already queued is unaffected. *)

val consume : ?priority:priority -> t -> float -> unit
(** Block the calling process until the CPU has executed [seconds] of its
    work.  Must be called from inside a process. *)

val consume_k : ?priority:priority -> t -> float -> (unit -> unit) -> unit
(** [consume_k t seconds k] runs [k] once the CPU has executed [seconds]
    of work — {!consume} in continuation-passing style.  Queues the same
    job at the same moment as [consume] would (identical event
    sequences), but needs no surrounding process: no fiber, no effect
    suspension.  The backbone of the per-packet receive path, where a
    process existed only to wait for the CPU.  [k] runs from the CPU
    completion event; if [seconds] is zero it runs immediately. *)

val charge : ?priority:priority -> t -> float -> unit
(** Queue [seconds] of work without waiting for it; used for interrupt
    service routines whose completion nobody blocks on.  The work still
    occupies the CPU and delays other work. *)

val busy_time : t -> float
(** Total seconds of work completed (plus the elapsed part of any work in
    service) since creation. *)

val utilization : t -> since_time:float -> since_busy:float -> float
(** Busy fraction over the window from [since_time] (with busy counter
    value [since_busy]) to now. *)
