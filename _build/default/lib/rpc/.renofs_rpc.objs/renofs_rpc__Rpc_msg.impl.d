lib/rpc/rpc_msg.ml: Printf Renofs_mbuf Renofs_xdr
