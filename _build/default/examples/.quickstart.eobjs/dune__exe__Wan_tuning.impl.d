examples/wan_tuning.ml: Fileset List Nhfsstone Option Printf Renofs_core Renofs_engine Renofs_net Renofs_transport Renofs_workload
