lib/core/biod.ml: Renofs_engine
