# Convenience wrapper around dune.  `make check` is the tier-1 gate:
# everything must build, every test must pass, and the dune files must
# be formatted (ocamlformat is not vendored, so @fmt covers dune files
# only — see dune-project).

.PHONY: all build test fmt check clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

check: build test fmt

clean:
	dune clean
