(** Periodic CPU-utilization sampling, in the spirit of the paper's
    appendix: iostat(1) on the MicroVAXII misread utilization because
    clock interrupts were masked during peripheral interrupts, so the
    kernels were patched with an idle-loop counter.  Our {!Cpu} keeps
    exact busy time, and this sampler turns it into the utilization
    series an experimenter would watch. *)

type t

val start : Sim.t -> Cpu.t -> ?interval:float -> unit -> t
(** Sample every [interval] seconds (default 1.0) until {!stop}. *)

val stop : t -> unit

val samples : t -> (float * float) list
(** (time, utilization over the preceding interval) pairs. *)

val mean_utilization : t -> float
(** Busy fraction over the whole sampled span; 0 if nothing sampled. *)

val peak_utilization : t -> float
