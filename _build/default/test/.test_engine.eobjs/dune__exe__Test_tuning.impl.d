test/test_tuning.ml: Alcotest Bytes Char Nfs_client Nfs_proto Nfs_server Renofs_core Renofs_engine Renofs_net Renofs_transport
