module Mbuf = Renofs_mbuf.Mbuf

exception Decode_error of string

let pad_len n = (4 - (n land 3)) land 3
let zeros = Bytes.make 4 '\000'

module Enc = struct
  type t = {
    chain : Mbuf.t;
    ctr : Mbuf.Counters.t option;
    pool : Mbuf.Pool.t option;
  }

  let create ?ctr ?pool () = { chain = Mbuf.empty (); ctr; pool }
  let sub t = create ?ctr:t.ctr ?pool:t.pool ()
  let chain t = t.chain
  let u32 t v = Mbuf.add_u32 ?ctr:t.ctr ?pool:t.pool t.chain v

  let int t v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Xdr.Enc.int: out of range";
    u32 t (Int32.of_int (v land 0xFFFFFFFF))

  let bool t b = u32 t (if b then 1l else 0l)
  let enum t v = int t v

  let u64 t v =
    u32 t (Int64.to_int32 (Int64.shift_right_logical v 32));
    u32 t (Int64.to_int32 v)

  let opaque_fixed t b =
    Mbuf.add_bytes ?ctr:t.ctr ?pool:t.pool t.chain b ~off:0 ~len:(Bytes.length b);
    let pad = pad_len (Bytes.length b) in
    if pad > 0 then
      Mbuf.add_bytes ?ctr:t.ctr ?pool:t.pool t.chain zeros ~off:0 ~len:pad

  let opaque t b =
    int t (Bytes.length b);
    opaque_fixed t b

  let string t s = opaque t (Bytes.of_string s)
  let append_chain t other = Mbuf.append_chain t.chain other
end

module Dec = struct
  (* The cursor plus the chain's total length, so every error locates
     itself ("... at byte N of M") — the only clue a fuzzing run gives
     about where in a mangled message decoding fell over. *)
  type t = { c : Mbuf.Cursor.t; total : int }

  let create chain = { c = Mbuf.Cursor.create chain; total = Mbuf.length chain }
  let remaining t = Mbuf.Cursor.remaining t.c

  let fail t what =
    raise
      (Decode_error
         (Printf.sprintf "%s at byte %d of %d" what
            (t.total - Mbuf.Cursor.remaining t.c)
            t.total))

  let u32 t =
    try Mbuf.Cursor.u32 t.c
    with Mbuf.Cursor.Underrun -> fail t "truncated u32"

  let int t =
    let v = u32 t in
    Int32.to_int v land 0xFFFFFFFF

  let bool t =
    match u32 t with 0l -> false | 1l -> true | _ -> fail t "bad bool"

  let enum t = int t

  let u64 t =
    let hi = u32 t and lo = u32 t in
    let hi64 = Int64.shift_left (Int64.of_int32 hi) 32 in
    let lo64 = Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL in
    Int64.logor hi64 lo64

  let opaque_fixed t n =
    if n < 0 then fail t "negative opaque length";
    let body =
      try Mbuf.Cursor.bytes t.c n
      with Mbuf.Cursor.Underrun -> fail t "truncated opaque"
    in
    let pad = pad_len n in
    (try Mbuf.Cursor.skip t.c pad
     with Mbuf.Cursor.Underrun -> fail t "truncated padding");
    body

  let opaque t ~max =
    let n = int t in
    if n > max then fail t (Printf.sprintf "opaque too long (%d > %d)" n max);
    opaque_fixed t n

  let string t ~max = Bytes.to_string (opaque t ~max)
end
