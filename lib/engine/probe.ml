type t = {
  enter : int -> int;
  leave : int -> unit;
  current : unit -> int;
  fire_enter : int -> int;
  fire_leave : int -> unit;
}

let harness = 0
let scheduler = 1
let cpu = 2
let link = 3
let transport = 4
let server = 5
let vfs = 6
let observer = 7
let n_slots = 8

let names =
  [| "harness"; "scheduler"; "cpu"; "link"; "transport"; "server"; "vfs";
     "observer" |]

let slot_name i =
  if i >= 0 && i < n_slots then names.(i) else Printf.sprintf "slot%d" i

let scoped probe slot f =
  match probe with
  | None -> f ()
  | Some p ->
      let d = p.enter slot in
      let r = try f () with e -> p.leave d; raise e in
      p.leave d;
      r
