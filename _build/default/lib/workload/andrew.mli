(** The Modified Andrew Benchmark [Ousterhout90], as used for Tables
    2-4.

    Five phases over a synthetic source tree: (I) create the directory
    hierarchy, (II) copy every source file into it, (III) stat every
    file (recursive ls -l), (IV) read every file (grep), (V) compile —
    read each .c file and the headers it includes, burn compile CPU,
    write the .o.  On a MicroVAXII phase V is dominated by client CPU,
    which is why the paper reports it separately and why the RPC counts
    (Table 3) are more interesting than the times. *)

type config = {
  source_files : int;  (** .c files in the tree *)
  header_files : int;
  subdirs : int;
  compile_instructions_per_byte : float;
      (** CPU cost of compiling one source byte (drives phase V) *)
  seed : int;
}

val default_config : config

type result = {
  phase_times : float array;  (** seconds, phases I-V *)
  time_i_iv : float;  (** phases I-IV summed — the paper's first column *)
  time_v : float;
  rpc_counts : (string * int) list;  (** per procedure, Table 3 *)
  total_rpcs : int;
}

val run : Renofs_core.Nfs_client.t -> ?config:config -> unit -> result
(** Run all five phases against a fresh area of the mount.  Must run
    inside a process.  RPC counts are deltas over the run. *)
