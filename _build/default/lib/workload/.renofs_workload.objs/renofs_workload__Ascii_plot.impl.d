lib/workload/ascii_plot.ml: Array Buffer Experiments Float List Option Printf String
