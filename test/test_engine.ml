open Renofs_engine

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Sim                                                                *)
(* ------------------------------------------------------------------ *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.at sim 3.0 (fun () -> log := "c" :: !log);
  Sim.at sim 1.0 (fun () -> log := "a" :: !log);
  Sim.at sim 2.0 (fun () -> log := "b" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock at last event" 3.0 (Sim.now sim)

let test_sim_fifo_same_time () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.at sim 1.0 (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo within a timestamp" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sim_past_raises () =
  let sim = Sim.create () in
  Sim.at sim 5.0 (fun () -> ());
  Sim.run sim;
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Sim.at: time 1 is before now 5") (fun () ->
      Sim.at sim 1.0 ignore)

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let hits = ref 0 in
  Sim.at sim 1.0 (fun () ->
      Sim.after sim 0.5 (fun () ->
          incr hits;
          check_float "nested time" 1.5 (Sim.now sim)));
  Sim.run sim;
  Alcotest.(check int) "nested ran" 1 !hits

let test_sim_until () =
  let sim = Sim.create () in
  let hits = ref 0 in
  Sim.at sim 1.0 (fun () -> incr hits);
  Sim.at sim 10.0 (fun () -> incr hits);
  Sim.run ~until:5.0 sim;
  Alcotest.(check int) "only early event" 1 !hits;
  check_float "clock moved to until" 5.0 (Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "late event still queued" 2 !hits

let test_timer_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let tm = Sim.timer_after sim 2.0 (fun () -> fired := true) in
  Alcotest.(check bool) "pending before" true (Sim.pending tm);
  Sim.cancel tm;
  Sim.run sim;
  Alcotest.(check bool) "cancelled timer silent" false !fired;
  Alcotest.(check bool) "not pending after" false (Sim.pending tm)

let test_events_processed () =
  let sim = Sim.create () in
  for i = 1 to 10 do
    Sim.at sim (float_of_int i) ignore
  done;
  Sim.run sim;
  Alcotest.(check int) "count" 10 (Sim.events_processed sim)

(* Oracle check of the calendar queue against the (time, seq) contract:
   a randomized script of nested schedules and cancels — thousands of
   events across many bucket-array growths and shrinks, with same-time
   ties, same-bucket churn and multi-year jumps — must fire in exactly
   sorted (time, insertion order).  The local [id] counter advances in
   lockstep with Sim's internal sequence number because every schedule
   in this simulator goes through [spawn]. *)
let test_sim_oracle_order () =
  let rng = Rng.create 97 in
  let sim = Sim.create () in
  let next_id = ref 0 in
  let fired = ref [] in
  let live = Hashtbl.create 64 in (* id -> timer *)
  let cancelled = ref 0 in
  let cancel_youngest () =
    let victim = Hashtbl.fold (fun id _ acc -> max id acc) live (-1) in
    match Hashtbl.find_opt live victim with
    | None -> ()
    | Some tm ->
        Sim.cancel tm;
        Hashtbl.remove live victim;
        incr cancelled
  in
  let rec spawn depth =
    let id = !next_id in
    incr next_id;
    let delay =
      match Rng.int rng 4 with
      | 0 -> Rng.float rng 1e-4 (* same-bucket churn *)
      | 1 -> Rng.float rng 2.0
      | 2 -> Rng.float rng 80.0 (* several bucket-years ahead *)
      | _ -> 0.0 (* same instant: seq tie-break *)
    in
    let time = Sim.now sim +. delay in
    let tm =
      Sim.timer_after sim delay (fun () ->
          Hashtbl.remove live id;
          fired := (time, id) :: !fired;
          if depth < 3 then
            for _ = 1 to Rng.int rng 3 do
              spawn (depth + 1)
            done;
          if Rng.int rng 8 = 0 then cancel_youngest ())
    in
    Hashtbl.replace live id tm
  in
  for _ = 1 to 400 do
    spawn 0
  done;
  Sim.run sim;
  let order = List.rev !fired in
  Alcotest.(check int) "every event fired or was cancelled"
    !next_id
    (List.length order + !cancelled);
  Alcotest.(check bool) "a real population ran" true (!next_id > 1000);
  Alcotest.(check bool) "some cancels happened" true (!cancelled > 10);
  Alcotest.(check
               (list (pair (float 0.0) int)))
    "fired in (time, seq) order" (List.sort compare order) order

(* ------------------------------------------------------------------ *)
(* Proc                                                               *)
(* ------------------------------------------------------------------ *)

let test_proc_sleep () =
  let sim = Sim.create () in
  let log = ref [] in
  Proc.spawn sim (fun () ->
      Proc.sleep sim 1.0;
      log := ("p1", Sim.now sim) :: !log;
      Proc.sleep sim 2.0;
      log := ("p1b", Sim.now sim) :: !log);
  Proc.spawn sim (fun () ->
      Proc.sleep sim 1.5;
      log := ("p2", Sim.now sim) :: !log);
  Sim.run sim;
  Alcotest.(check (list (pair string (float 1e-9))))
    "interleaving"
    [ ("p1", 1.0); ("p2", 1.5); ("p1b", 3.0) ]
    (List.rev !log)

let test_ivar () =
  let sim = Sim.create () in
  let iv = Proc.Ivar.create sim in
  let got = ref [] in
  for i = 1 to 3 do
    Proc.spawn sim (fun () ->
        let v = Proc.Ivar.read iv in
        got := (i, v, Sim.now sim) :: !got)
  done;
  Proc.spawn sim (fun () ->
      Proc.sleep sim 2.0;
      Proc.Ivar.fill iv 42);
  Sim.run sim;
  Alcotest.(check int) "all woke" 3 (List.length !got);
  List.iter
    (fun (_, v, t) ->
      Alcotest.(check int) "value" 42 v;
      check_float "wake time" 2.0 t)
    !got;
  Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already full")
    (fun () -> Proc.Ivar.fill iv 0)

let test_ivar_read_after_fill () =
  let sim = Sim.create () in
  let iv = Proc.Ivar.create sim in
  Proc.Ivar.fill iv "x";
  let got = ref "" in
  Proc.spawn sim (fun () -> got := Proc.Ivar.read iv);
  Sim.run sim;
  Alcotest.(check string) "immediate read" "x" !got;
  Alcotest.(check (option string)) "peek" (Some "x") (Proc.Ivar.peek iv)

let test_mailbox_fifo () =
  let sim = Sim.create () in
  let mb = Proc.Mailbox.create sim in
  let got = ref [] in
  Proc.spawn sim (fun () ->
      for _ = 1 to 4 do
        got := Proc.Mailbox.recv mb :: !got
      done);
  Proc.spawn sim (fun () ->
      Proc.Mailbox.send mb 1;
      Proc.Mailbox.send mb 2;
      Proc.sleep sim 1.0;
      Proc.Mailbox.send mb 3;
      Proc.Mailbox.send mb 4);
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4 ] (List.rev !got)

let test_mailbox_try_recv () =
  let sim = Sim.create () in
  let mb = Proc.Mailbox.create sim in
  Alcotest.(check (option int)) "empty" None (Proc.Mailbox.try_recv mb);
  Proc.Mailbox.send mb 7;
  Alcotest.(check int) "length" 1 (Proc.Mailbox.length mb);
  Alcotest.(check (option int)) "pop" (Some 7) (Proc.Mailbox.try_recv mb)

let test_semaphore_limits_concurrency () =
  let sim = Sim.create () in
  let sem = Proc.Semaphore.create sim 2 in
  let active = ref 0 and peak = ref 0 in
  for _ = 1 to 6 do
    Proc.spawn sim (fun () ->
        Proc.Semaphore.acquire sem;
        incr active;
        if !active > !peak then peak := !active;
        Proc.sleep sim 1.0;
        decr active;
        Proc.Semaphore.release sem)
  done;
  Sim.run sim;
  Alcotest.(check int) "peak concurrency" 2 !peak;
  Alcotest.(check int) "all released" 2 (Proc.Semaphore.available sem)

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let c = Rng.split a in
  let x = Rng.bits64 a and y = Rng.bits64 c in
  Alcotest.(check bool) "streams differ" true (x <> y)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_rng_float_mean () =
  let rng = Rng.create 9 in
  let w = Stats.Welford.create () in
  for _ = 1 to 10_000 do
    Stats.Welford.add w (Rng.float rng 1.0)
  done;
  let m = Stats.Welford.mean w in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (m -. 0.5) < 0.02)

let test_rng_exponential_mean () =
  let rng = Rng.create 11 in
  let w = Stats.Welford.create () in
  for _ = 1 to 20_000 do
    Stats.Welford.add w (Rng.exponential rng 3.0)
  done;
  let m = Stats.Welford.mean w in
  Alcotest.(check bool) "mean near 3" true (abs_float (m -. 3.0) < 0.15)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_welford_known () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.Welford.count w);
  check_float "mean" 5.0 (Stats.Welford.mean w);
  check_float "sample variance" (32.0 /. 7.0) (Stats.Welford.variance w);
  check_float "min" 2.0 (Stats.Welford.min w);
  check_float "max" 9.0 (Stats.Welford.max w);
  check_float "total" 40.0 (Stats.Welford.total w)

let test_hist_quantile () =
  let h = Stats.Hist.create ~bucket_width:10.0 ~buckets:10 in
  for i = 0 to 99 do
    Stats.Hist.add h (float_of_int i)
  done;
  (* values 0..99: each bucket of width 10 holds exactly 10 values *)
  Alcotest.(check int) "count" 100 (Stats.Hist.count h);
  check_float "median bound" 50.0 (Stats.Hist.quantile h 0.5);
  check_float "p90 bound" 90.0 (Stats.Hist.quantile h 0.9)

let test_hist_overflow () =
  let h = Stats.Hist.create ~bucket_width:1.0 ~buckets:2 in
  Stats.Hist.add h 100.0;
  check_float "overflow quantile" infinity (Stats.Hist.quantile h 1.0)

let test_hist_quantile_bounds () =
  let h = Stats.Hist.create ~bucket_width:10.0 ~buckets:10 in
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Hist.quantile: empty") (fun () ->
      ignore (Stats.Hist.quantile h 0.5));
  (* One sample in the fourth bucket: every quantile is its bound. *)
  Stats.Hist.add h 35.0;
  check_float "q=0 on one sample" 40.0 (Stats.Hist.quantile h 0.0);
  check_float "q=1 on one sample" 40.0 (Stats.Hist.quantile h 1.0);
  for i = 0 to 99 do
    Stats.Hist.add h (float_of_int i)
  done;
  check_float "q=0 is the first nonempty bound" 10.0 (Stats.Hist.quantile h 0.0);
  check_float "q=1 is the last nonempty bound" 100.0 (Stats.Hist.quantile h 1.0);
  Alcotest.check_raises "q below range rejected"
    (Invalid_argument "Hist.quantile: q outside [0,1]") (fun () ->
      ignore (Stats.Hist.quantile h (-0.01)));
  Alcotest.check_raises "q above range rejected"
    (Invalid_argument "Hist.quantile: q outside [0,1]") (fun () ->
      ignore (Stats.Hist.quantile h 1.01));
  (* A sample past the covered range keeps finite quantiles for the
     covered mass but reports the tail as unbounded. *)
  Stats.Hist.add h 1e9;
  check_float "median still finite" 50.0 (Stats.Hist.quantile h 0.5);
  check_float "overflowed tail" infinity (Stats.Hist.quantile h 1.0)

let test_series () =
  let s = Stats.Series.create ~name:"rtt" () in
  Stats.Series.add s 1.0 0.1;
  Stats.Series.add s 2.0 0.2;
  Alcotest.(check int) "length" 2 (Stats.Series.length s);
  Alcotest.(check string) "name" "rtt" (Stats.Series.name s);
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "order" [ (1.0, 0.1); (2.0, 0.2) ] (Stats.Series.to_list s)

let check_points = Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))

let test_timeseries_delta () =
  check_points "empty" [] (Stats.Timeseries.delta []);
  check_points "single point" [] (Stats.Timeseries.delta [ (1.0, 5.0) ]);
  check_points "differences stamped at later time"
    [ (2.0, 3.0); (3.0, -1.0) ]
    (Stats.Timeseries.delta [ (1.0, 10.0); (2.0, 13.0); (3.0, 12.0) ])

let test_timeseries_rate () =
  check_points "empty" [] (Stats.Timeseries.rate []);
  check_points "single point" [] (Stats.Timeseries.rate [ (1.0, 5.0) ]);
  check_points "delta over dt"
    [ (2.0, 3.0); (4.0, 2.0) ]
    (Stats.Timeseries.rate [ (1.0, 10.0); (2.0, 13.0); (4.0, 17.0) ]);
  (* A repeated timestamp has no defined rate; the pair is skipped
     rather than emitting an infinity. *)
  check_points "zero dt skipped" [ (3.0, 1.0) ]
    (Stats.Timeseries.rate [ (1.0, 5.0); (1.0, 9.0); (3.0, 11.0) ])

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "read";
  Stats.Counter.incr c "read";
  Stats.Counter.incr ~by:3 c "lookup";
  Alcotest.(check int) "read" 2 (Stats.Counter.get c "read");
  Alcotest.(check int) "lookup" 3 (Stats.Counter.get c "lookup");
  Alcotest.(check int) "absent" 0 (Stats.Counter.get c "write");
  Alcotest.(check int) "total" 5 (Stats.Counter.total c);
  Alcotest.(check (list (pair string int)))
    "sorted" [ ("lookup", 3); ("read", 2) ] (Stats.Counter.to_list c)

let test_counter_reset () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "read";
  Stats.Counter.incr ~by:7 c "write";
  Stats.Counter.reset c;
  Alcotest.(check int) "total cleared" 0 (Stats.Counter.total c);
  Alcotest.(check int) "key cleared" 0 (Stats.Counter.get c "read");
  Alcotest.(check (list (pair string int))) "empty" [] (Stats.Counter.to_list c);
  (* Usable again after a reset. *)
  Stats.Counter.incr c "read";
  Alcotest.(check int) "recounts" 1 (Stats.Counter.get c "read")

(* ------------------------------------------------------------------ *)
(* Rtt                                                                *)
(* ------------------------------------------------------------------ *)

let test_rtt_first_sample () =
  let r = Rtt.create ~k:4.0 () in
  Alcotest.(check bool) "not inited" false (Rtt.initialized r);
  check_float "default rto" 1.0 (Rtt.rto r ~default:1.0);
  Rtt.observe r 0.2;
  check_float "srtt = sample" 0.2 (Rtt.srtt r);
  check_float "D = sample/2" 0.1 (Rtt.deviation r);
  check_float "rto = A + 4D" 0.6 (Rtt.rto r ~default:1.0)

let test_rtt_converges () =
  let r = Rtt.create ~k:4.0 () in
  for _ = 1 to 200 do
    Rtt.observe r 0.05
  done;
  Alcotest.(check bool) "srtt converged" true (abs_float (Rtt.srtt r -. 0.05) < 0.001);
  Alcotest.(check bool) "deviation shrinks" true (Rtt.deviation r < 0.002)

let test_rtt_clamping () =
  let r = Rtt.create ~k:4.0 ~min_rto:0.5 ~max_rto:2.0 () in
  Rtt.observe r 0.01;
  check_float "min clamp" 0.5 (Rtt.rto r ~default:1.0);
  for _ = 1 to 50 do
    Rtt.observe r 10.0
  done;
  check_float "max clamp" 2.0 (Rtt.rto r ~default:1.0)

let test_rtt_k_matters () =
  let r2 = Rtt.create ~k:2.0 () and r4 = Rtt.create ~k:4.0 () in
  List.iter
    (fun s ->
      Rtt.observe r2 s;
      Rtt.observe r4 s)
    [ 0.1; 0.3; 0.1; 0.5; 0.2 ];
  Alcotest.(check bool) "A+4D > A+2D" true
    (Rtt.rto r4 ~default:1.0 > Rtt.rto r2 ~default:1.0)

(* ------------------------------------------------------------------ *)
(* Cpu                                                                *)
(* ------------------------------------------------------------------ *)

let test_cpu_serializes () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:1.0 in
  let log = ref [] in
  Proc.spawn sim (fun () ->
      Cpu.consume cpu 1.0;
      log := ("a", Sim.now sim) :: !log);
  Proc.spawn sim (fun () ->
      Cpu.consume cpu 2.0;
      log := ("b", Sim.now sim) :: !log);
  Sim.run sim;
  Alcotest.(check (list (pair string (float 1e-9))))
    "fifo service" [ ("a", 1.0); ("b", 3.0) ] (List.rev !log);
  check_float "busy time" 3.0 (Cpu.busy_time cpu)

let test_cpu_interrupt_priority () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:1.0 in
  let log = ref [] in
  Proc.spawn sim (fun () ->
      Cpu.consume cpu 1.0;
      log := "normal1" :: !log);
  Proc.spawn sim (fun () ->
      Cpu.consume cpu 1.0;
      log := "normal2" :: !log);
  Proc.spawn sim (fun () ->
      (* Arrives while normal1 is in service; jumps the normal queue. *)
      Proc.sleep sim 0.5;
      Cpu.consume ~priority:Cpu.Interrupt cpu 0.25;
      log := "intr" :: !log);
  Sim.run sim;
  Alcotest.(check (list string))
    "interrupt served before queued normal work"
    [ "normal1"; "intr"; "normal2" ]
    (List.rev !log)

let test_cpu_charge_async () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:1.0 in
  Cpu.charge cpu 2.0;
  Sim.run sim;
  check_float "charged busy" 2.0 (Cpu.busy_time cpu)

let test_cpu_utilization () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:1.0 in
  Proc.spawn sim (fun () -> Cpu.consume cpu 2.0);
  Sim.at sim 4.0 ignore;
  Sim.run sim;
  check_float "50%% busy over 4s" 0.5 (Cpu.utilization cpu ~since_time:0.0 ~since_busy:0.0)

let test_iostat_sampling () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:1.0 in
  let io = Iostat.start sim cpu ~interval:1.0 () in
  (* 50% duty cycle: 0.5 s of work at the start of each second. *)
  Proc.spawn sim (fun () ->
      for _ = 1 to 10 do
        Cpu.consume cpu 0.5;
        Proc.sleep sim 0.5
      done);
  Sim.run ~until:10.5 sim;
  Iostat.stop io;
  Alcotest.(check bool) "several samples" true (List.length (Iostat.samples io) >= 9);
  let mean = Iostat.mean_utilization io in
  Alcotest.(check bool) "mean near 50%" true (mean > 0.4 && mean < 0.6);
  Alcotest.(check bool) "peak at least mean" true (Iostat.peak_utilization io >= mean)

let test_iostat_idle () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:1.0 in
  let io = Iostat.start sim cpu () in
  Sim.run ~until:5.0 sim;
  Iostat.stop io;
  Alcotest.(check (float 1e-9)) "idle cpu" 0.0 (Iostat.mean_utilization io)

let test_cpu_instructions () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:0.9 in
  check_float "0.9 MIPS" (1.0 /. 0.9e6) (Cpu.seconds_of_instructions cpu 1.0)

let () =
  Alcotest.run "engine"
    [
      ( "sim",
        [
          Alcotest.test_case "event ordering" `Quick test_sim_ordering;
          Alcotest.test_case "fifo at same time" `Quick test_sim_fifo_same_time;
          Alcotest.test_case "past raises" `Quick test_sim_past_raises;
          Alcotest.test_case "nested schedule" `Quick test_sim_nested_schedule;
          Alcotest.test_case "run until" `Quick test_sim_until;
          Alcotest.test_case "timer cancel" `Quick test_timer_cancel;
          Alcotest.test_case "events processed" `Quick test_events_processed;
          Alcotest.test_case "oracle order under churn" `Quick
            test_sim_oracle_order;
        ] );
      ( "proc",
        [
          Alcotest.test_case "sleep interleaves" `Quick test_proc_sleep;
          Alcotest.test_case "ivar wakes all" `Quick test_ivar;
          Alcotest.test_case "ivar read after fill" `Quick test_ivar_read_after_fill;
          Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "mailbox try_recv" `Quick test_mailbox_try_recv;
          Alcotest.test_case "semaphore bounds" `Quick test_semaphore_limits_concurrency;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        ] );
      ( "stats",
        [
          Alcotest.test_case "welford known values" `Quick test_welford_known;
          Alcotest.test_case "hist quantile" `Quick test_hist_quantile;
          Alcotest.test_case "hist overflow" `Quick test_hist_overflow;
          Alcotest.test_case "hist quantile bounds" `Quick test_hist_quantile_bounds;
          Alcotest.test_case "series" `Quick test_series;
          Alcotest.test_case "timeseries delta" `Quick test_timeseries_delta;
          Alcotest.test_case "timeseries rate" `Quick test_timeseries_rate;
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "counter reset" `Quick test_counter_reset;
        ] );
      ( "rtt",
        [
          Alcotest.test_case "first sample" `Quick test_rtt_first_sample;
          Alcotest.test_case "converges" `Quick test_rtt_converges;
          Alcotest.test_case "clamping" `Quick test_rtt_clamping;
          Alcotest.test_case "A+4D above A+2D" `Quick test_rtt_k_matters;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "serializes work" `Quick test_cpu_serializes;
          Alcotest.test_case "interrupt priority" `Quick test_cpu_interrupt_priority;
          Alcotest.test_case "async charge" `Quick test_cpu_charge_async;
          Alcotest.test_case "utilization" `Quick test_cpu_utilization;
          Alcotest.test_case "instruction conversion" `Quick test_cpu_instructions;
        ] );
      ( "iostat",
        [
          Alcotest.test_case "duty-cycle sampling" `Quick test_iostat_sampling;
          Alcotest.test_case "idle" `Quick test_iostat_idle;
        ] );
    ]
