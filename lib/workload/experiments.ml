module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu
module Stats = Renofs_engine.Stats
module Net = Renofs_net
module Node = Renofs_net.Node
module Nic = Renofs_net.Nic
module Topology = Renofs_net.Topology
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Fs = Renofs_vfs.Fs
module Disk = Renofs_vfs.Disk
module Nfs_server = Renofs_core.Nfs_server
module Nfs_client = Renofs_core.Nfs_client
module Client_transport = Renofs_core.Client_transport
module Trace = Renofs_trace.Trace
module Fault = Renofs_fault.Fault
module Metrics = Renofs_metrics.Metrics
module Fleet = Renofs_fleet.Fleet
module Profile = Renofs_profile.Profile
module Flight = Renofs_profile.Flight

type scale = Quick | Full

(* ------------------------------------------------------------------ *)
(* Typed measurement values                                           *)
(* ------------------------------------------------------------------ *)

type unit_of_measure = Ms | Sec | Per_sec | Percent | Bytes | Count

type value =
  | Text of string
  | Int of int * unit_of_measure
  | Float of float * unit_of_measure * int

let unit_name = function
  | Ms -> "ms"
  | Sec -> "s"
  | Per_sec -> "per_s"
  | Percent -> "percent"
  | Bytes -> "bytes"
  | Count -> "count"

let render_value = function
  | Text s -> s
  | Int (v, _) -> string_of_int v
  | Float (v, Percent, prec) -> Printf.sprintf "%.*f%%" prec v
  | Float (v, _, prec) -> Printf.sprintf "%.*f" prec v

(* Constructors: the float is stored in its display unit, so rendering
   never rescales (and serial/parallel runs can be compared bit for
   bit). *)
let ms v = Float (v *. 1000.0, Ms, 1) (* measured in seconds *)
let msr v = Float (v, Ms, 1) (* already in milliseconds *)
let sec1 v = Float (v, Sec, 1)
let sec2 v = Float (v, Sec, 2)
let rate1 v = Float (v, Per_sec, 1)
let rate2 v = Float (v, Per_sec, 2)
let pct0 v = Float (v *. 100.0, Percent, 0) (* measured as a fraction *)
let pct_raw v = Float (v, Percent, 0) (* already in percent *)
let count n = Int (n, Count)
let byte_count n = Int (n, Bytes)
let txt s = Text s

let float_of_value = function
  | Float (v, _, _) -> v
  | Int (v, _) -> float_of_int v
  | Text s -> float_of_string s

(* ------------------------------------------------------------------ *)
(* Rendered tables                                                    *)
(* ------------------------------------------------------------------ *)

type table = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
}

let print_table fmt t =
  let widths =
    List.fold_left
      (fun acc row ->
        List.mapi (fun i cell -> max (List.nth acc i) (String.length cell)) row)
      (List.map String.length t.header)
      t.rows
  in
  let print_row row =
    Format.fprintf fmt "| %s |@."
      (String.concat " | "
         (List.mapi
            (fun i cell -> cell ^ String.make (List.nth widths i - String.length cell) ' ')
            row))
  in
  Format.fprintf fmt "== %s: %s ==@." t.id t.title;
  print_row t.header;
  Format.fprintf fmt "|%s|@."
    (String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter print_row t.rows;
  Format.fprintf fmt "@."

(* ------------------------------------------------------------------ *)
(* Cells and specs                                                    *)
(* ------------------------------------------------------------------ *)

type ctx = {
  trace : Trace.t option;
  faults : Fault.schedule option;
  metrics : Metrics.t option;
  profile : Profile.t option;
  cell_label : string;
}

exception Driver_stuck of string

type cell = { cell_label : string; cell_run : ctx -> value list }

type spec = {
  sp_id : string;
  sp_title : string;
  sp_header : string list;
  sp_cells : cell list;
  sp_assemble : value list list -> value list list;
}

type results = {
  r_id : string;
  r_title : string;
  r_header : string list;
  r_rows : value list list;
}

let render r =
  {
    id = r.r_id;
    title = r.r_title;
    header = r.r_header;
    rows = List.map (List.map render_value) r.r_rows;
  }

(* [chunk n xs] splits [xs] into consecutive groups of [n]. *)
let chunk n xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = 1 then go (List.rev (x :: cur) :: acc) [] n rest
        else go acc (x :: cur) (k - 1) rest
  in
  if n <= 0 then invalid_arg "chunk" else go [] [] n xs

(* A cell that failed, in its own verdict: any row value that is a
   FAIL-prefixed text — chaos/fuzz invariant verdicts, the fuzzer's
   FAIL:stuck / FAIL:exn rows, a scenario's SLO-breach verdict. *)
let fail_value out =
  List.find_map
    (function
      | Text s when String.length s >= 4 && String.sub s 0 4 = "FAIL" -> Some s
      | _ -> None)
    out

(* Each cell records into its own sinks (trace, metrics and profile
   alike); the sinks are merged into the main ones in cell order after
   the sweep, so the combined streams are identical to a serial run's
   (trace segments stay mark-delimited; metrics runs keep start order;
   profile counters commute).

   An armed flight recorder forces a private trace sink and profile on
   every cell even when the caller asked for neither, so a failing cell
   always has a tail and a snapshot to dump.  Dumps happen inside the
   cell body — in the worker domain, before [Sweep.run] re-raises — so
   a [Driver_stuck] on one cell cannot lose another cell's bundle. *)
let run_cells ?jobs ?profile ?flight ~trace ~faults ~metrics cells =
  let trace_sinks =
    match (trace, flight) with
    | Some main, _ ->
        let cap = Trace.capacity main in
        List.map (fun _ -> Some (Trace.create ~capacity:cap ())) cells
    | None, Some _ ->
        List.map (fun _ -> Some (Trace.create ~capacity:(1 lsl 18) ())) cells
    | None, None -> List.map (fun _ -> None) cells
  in
  let metric_sinks =
    match metrics with
    | None -> List.map (fun _ -> None) cells
    | Some main ->
        List.map
          (fun _ -> Some (Metrics.create ~interval:(Metrics.interval main) ()))
          cells
  in
  let profile_sinks =
    match (profile, flight) with
    | Some _, _ | None, Some _ ->
        List.map (fun _ -> Some (Profile.create ())) cells
    | None, None -> List.map (fun _ -> None) cells
  in
  let run_one c ctx =
    (match ctx.profile with Some p -> Profile.start p | None -> ());
    let finish () =
      match ctx.profile with Some p -> Profile.stop p | None -> ()
    in
    let dump reason =
      match flight with
      | None -> ()
      | Some f ->
          ignore
            (Flight.dump f ~label:c.cell_label ~reason ?trace:ctx.trace
               ?metrics:ctx.metrics ?profile:ctx.profile ())
    in
    match c.cell_run ctx with
    | out ->
        finish ();
        (match fail_value out with Some reason -> dump reason | None -> ());
        out
    | exception e ->
        finish ();
        (match e with Driver_stuck msg -> dump msg | _ -> ());
        raise e
  in
  let outs =
    Sweep.run ?jobs
      (List.map2
         (fun c ((tr, mt), pf) ->
           Sweep.cell ~label:c.cell_label (fun () ->
               run_one c
                 {
                   trace = tr;
                   faults;
                   metrics = mt;
                   profile = pf;
                   cell_label = c.cell_label;
                 }))
         cells
         (List.combine (List.combine trace_sinks metric_sinks) profile_sinks))
  in
  (match trace with
  | Some main ->
      List.iter
        (function Some sink -> Trace.merge ~into:main sink | None -> ())
        trace_sinks
  | None -> ());
  (match metrics with
  | Some main ->
      List.iter
        (function Some sink -> Metrics.merge ~into:main sink | None -> ())
        metric_sinks
  | None -> ());
  (match profile with
  | Some main ->
      List.iter
        (function Some sink -> Profile.merge ~into:main sink | None -> ())
        profile_sinks
  | None -> ());
  outs

let run_spec ?jobs ?trace ?faults ?metrics ?profile ?flight spec =
  let outs =
    run_cells ?jobs ?profile ?flight ~trace ~faults ~metrics spec.sp_cells
  in
  {
    r_id = spec.sp_id;
    r_title = spec.sp_title;
    r_header = spec.sp_header;
    r_rows = spec.sp_assemble outs;
  }

let run_specs ?jobs ?trace ?faults ?metrics ?profile ?flight specs =
  (* One shared pool across every spec: single-cell experiments overlap
     with their neighbours instead of serialising the tail. *)
  let outs =
    run_cells ?jobs ?profile ?flight ~trace ~faults ~metrics
      (List.concat_map (fun s -> s.sp_cells) specs)
  in
  let rec split specs outs =
    match specs with
    | [] -> []
    | s :: rest ->
        let k = List.length s.sp_cells in
        let mine = List.filteri (fun i _ -> i < k) outs in
        let theirs = List.filteri (fun i _ -> i >= k) outs in
        {
          r_id = s.sp_id;
          r_title = s.sp_title;
          r_header = s.sp_header;
          r_rows = s.sp_assemble mine;
        }
        :: split rest theirs
  in
  split specs outs

(* ------------------------------------------------------------------ *)
(* World plumbing                                                     *)
(* ------------------------------------------------------------------ *)

type world = {
  sim : Sim.t;
  topo : Topology.t;
  server : Nfs_server.t;
  client_udp : Udp.stack;
  client_tcp : Tcp.stack;
}

(* Attach one observers record to every node in this world: the cell's
   trace sink (opening a new mark-delimited segment — each world has its
   own sim clock and xid space, so the report must not join across
   worlds), a metrics run when sampling was requested (labelled by the
   cell; must run on worlds drained with [Sim.run ~until] windows — i.e.
   everything built through [drive] — because the sampling tick keeps
   the event queue non-empty forever), and a fresh per-world mbuf pool
   so the transports recycle buffer storage across calls. *)
let attach_observers ctx sim topo label =
  (* Probe first, so the metrics tick and everything scheduled from
     here on carries a slot tag. *)
  (match ctx.profile with
  | None -> ()
  | Some p ->
      let probe = Some (Profile.probe p) in
      Sim.set_probe sim probe;
      (match ctx.trace with Some tr -> Trace.set_probe tr probe | None -> ()));
  (match ctx.trace with
  | None -> ()
  | Some tr -> Trace.mark tr ~time:(Sim.now sim) label);
  let run =
    match ctx.metrics with
    | None -> None
    | Some mt -> Some (Metrics.start_run mt ~sim ~label:ctx.cell_label)
  in
  let obs =
    {
      Node.trace = ctx.trace;
      metrics = run;
      pool = Some (Renofs_mbuf.Mbuf.Pool.create ());
    }
  in
  List.iter (fun n -> Node.attach n obs) topo.Topology.all

let install_faults ~ctx world =
  match ctx.faults with
  | None -> ()
  | Some sched ->
      Fault.install
        {
          Fault.sim = world.sim;
          nodes = world.topo.Topology.all;
          servers = [ world.server ];
          trace = ctx.trace;
        }
        sched

(* [defer_faults] leaves the schedule uninstalled so runners with a
   warmup phase can install it (via {!install_faults}) when the
   measured run starts — schedule times are relative to installation. *)
let make_world ?(params = Topology.default_params)
    ?(server_profile = Nfs_server.reno_profile) ?(defer_faults = false)
    ?(udp_checksum = true) ?run_label ~ctx ~topology () =
  let sim = Sim.create () in
  let topo =
    Topology.build sim
      { Topology.shape = Topology.shape_of_name topology; clients = 1; params }
  in
  attach_observers ctx sim topo (Option.value run_label ~default:topology);
  let sudp = Udp.install ~checksum:udp_checksum topo.Topology.server in
  let stcp = Tcp.install topo.Topology.server in
  let server =
    Nfs_server.create topo.Topology.server ~profile:server_profile ~udp:sudp
      ~tcp:stcp ()
  in
  Nfs_server.start server;
  let world =
    {
      sim;
      topo;
      server;
      client_udp = Udp.install ~checksum:udp_checksum topo.Topology.client;
      client_tcp = Tcp.install topo.Topology.client;
    }
  in
  if not defer_faults then install_faults ~ctx world;
  world

let stuck_message ~label ~windows sim =
  Printf.sprintf
    "%s: driver never finished after %d advance windows (sim time %.1f s, %d \
     events pending, %d processed)"
    label windows (Sim.now sim) (Sim.pending_events sim) (Sim.events_processed sim)

(* Run [body] as a driver process; keep the simulator moving (cross
   traffic never drains the event queue) until the driver finishes. *)
let drive ?(label = "experiment") world body =
  let result = ref None in
  Proc.spawn world.sim (fun () -> result := Some (body ()));
  let guard = ref 0 in
  while !result = None do
    incr guard;
    if !guard > 100_000 then
      raise (Driver_stuck (stuck_message ~label ~windows:!guard world.sim));
    Sim.run ~until:(Sim.now world.sim +. 100.0) world.sim
  done;
  Option.get !result

let mss_for topology = if topology = "lan" then 1460 else 512

let mount_opts_for ~transport ~topology =
  let base =
    match transport with
    | `Udp_fixed -> Nfs_client.reno_mount
    | `Udp_dynamic -> Nfs_client.reno_dynamic_mount
    | `Tcp -> Nfs_client.reno_tcp_mount
  in
  { base with Nfs_client.mss = mss_for topology }

let mount_in world opts =
  Nfs_client.mount ~udp:world.client_udp ~tcp:world.client_tcp
    ~server:(Topology.server_id world.topo)
    ~root:(Nfs_server.root_fhandle world.server)
    opts

let transports = [ ("udp-fixed", `Udp_fixed); ("udp-dyn", `Udp_dynamic); ("tcp", `Tcp) ]

(* The robustness matrices (chaos, fuzz) add a fourth column to the
   transport sweep: the v3 profile, whose UNSTABLE writes may legally
   die with a crashed server — the write-behind ledger and COMMIT
   verifier check are what keep the durability invariants green. *)
let robustness_mounts ~topology =
  List.map
    (fun (name, transport) -> (name, mount_opts_for ~transport ~topology))
    transports
  @ [ ("v3", { Nfs_client.v3_mount with Nfs_client.mss = mss_for topology }) ]

let standard_fileset =
  Fileset.generate ~dirs:20 ~files_per_dir:20 ~file_size:16384 ~long_names:true

(* ------------------------------------------------------------------ *)
(* Nhfsstone sweeps (Graphs 1-5, 8, 9; Tables 1; Graph 6)             *)
(* ------------------------------------------------------------------ *)

let sweep_loads = function Quick -> [ 5.0; 10.0; 20.0; 30.0 ] | Full -> [ 5.0; 10.0; 15.0; 20.0; 25.0; 30.0; 40.0 ]
let sweep_duration = function Quick -> 20.0 | Full -> 120.0

let one_nhfsstone_run ?(server_profile = Nfs_server.reno_profile)
    ?(params = Topology.default_params) ?(warmup = 8.0) ?(children = 4) ?label
    ~ctx ~topology ~mount_opts ~mix ~rate ~duration ~seed () =
  let world =
    make_world ~params ~server_profile ~defer_faults:true ?run_label:label ~ctx
      ~topology ()
  in
  drive ?label world (fun () ->
      (* Preload and warmup are not part of the measured run: gate the
         sink so the report sees steady state only, and hold the fault
         schedule back so it perturbs the measured run, not the warmup. *)
      (match ctx.trace with Some tr -> Trace.set_enabled tr false | None -> ());
      (match ctx.metrics with Some m -> Metrics.set_enabled m false | None -> ());
      Fileset.preload_server world.server standard_fileset;
      let m = mount_in world mount_opts in
      if warmup > 0.0 then
        ignore
          (Nhfsstone.run m standard_fileset
             { Nhfsstone.rate; duration = warmup; children; mix; seed = seed + 1 });
      (match ctx.trace with Some tr -> Trace.set_enabled tr true | None -> ());
      (match ctx.metrics with Some m -> Metrics.set_enabled m true | None -> ());
      install_faults ~ctx world;
      Nhfsstone.run m standard_fileset
        { Nhfsstone.rate; duration; children; mix; seed })

(* One cell per (load x transport) point; rows are reassembled from the
   flat cell list, one transport group per load. *)
let transport_sweep ~id ~title ~topology ~mix ?loads ~scale () =
  let loads = match loads with Some l -> l | None -> sweep_loads scale in
  let duration = sweep_duration scale in
  let cells =
    List.concat_map
      (fun load ->
        List.map
          (fun (name, transport) ->
            {
              cell_label = Printf.sprintf "%s/load%g/%s" id load name;
              cell_run =
                (fun ctx ->
                  let r =
                    one_nhfsstone_run ~ctx ~label:name ~topology
                      ~mount_opts:(mount_opts_for ~transport ~topology)
                      ~mix ~rate:load ~duration ~seed:42 ()
                  in
                  [ ms r.Nhfsstone.mean_op_latency ]);
            })
          transports)
      loads
  in
  {
    sp_id = id;
    sp_title = title;
    sp_header = "load(rpc/s)" :: List.map (fun (n, _) -> n ^ " RTT(ms)") transports;
    sp_cells = cells;
    sp_assemble =
      (fun outs ->
        List.map2
          (fun load per_transport -> rate1 load :: List.concat per_transport)
          loads
          (chunk (List.length transports) outs));
  }

let graph1_spec scale =
  transport_sweep ~id:"graph1" ~title:"Ave RTT vs load, lookup mix, same LAN"
    ~topology:"lan" ~mix:Nhfsstone.lookup_mix ~scale ()

let graph2_spec scale =
  transport_sweep ~id:"graph2" ~title:"Ave RTT vs load, 50/50 read/lookup, same LAN"
    ~topology:"lan" ~mix:Nhfsstone.read_lookup_mix ~scale ()

let graph3_spec scale =
  transport_sweep ~id:"graph3"
    ~title:"Ave RTT vs load, lookup mix, token ring + 2 routers" ~topology:"campus"
    ~mix:Nhfsstone.lookup_mix ~scale ()

let graph4_spec scale =
  transport_sweep ~id:"graph4"
    ~title:"Ave RTT vs load, read/lookup mix, token ring + 2 routers"
    ~topology:"campus" ~mix:Nhfsstone.read_lookup_mix ~scale ()

let graph5_spec scale =
  (* The 56K line saturates near 18 lookup/s; the interesting region is
     the approach to it. *)
  let loads =
    match scale with
    | Quick -> [ 4.0; 10.0; 18.0 ]
    | Full -> [ 4.0; 8.0; 12.0; 14.0; 16.0; 18.0 ]
  in
  transport_sweep ~id:"graph5"
    ~title:"Ave RTT vs load, lookup mix, 56Kbps link + 3 routers" ~topology:"wan"
    ~mix:Nhfsstone.lookup_mix ~loads ~scale ()

let table1_spec scale =
  (* The fixed-RTO pathology on the 56K line builds up over repeated
     backoff cycles, so even Quick scale needs a couple of minutes of
     virtual time per cell. *)
  let duration = match scale with Quick -> 120.0 | Full -> 180.0 in
  let configs =
    (* The 56K row runs enough closed-loop children to saturate the
       line, as offered load did in the paper. *)
    [
      ("same LAN", "lan", 24.0, 4);
      ("token ring", "campus", 20.0, 4);
      ("56Kbps", "wan", 8.0, 8);
    ]
  in
  let cells =
    List.concat_map
      (fun (row_label, topology, rate, children) ->
        List.map
          (fun (name, transport) ->
            {
              cell_label = Printf.sprintf "table1/%s/%s" row_label name;
              cell_run =
                (fun ctx ->
                  let r =
                    one_nhfsstone_run ~ctx ~label:name ~topology ~children
                      ~mount_opts:(mount_opts_for ~transport ~topology)
                      ~mix:Nhfsstone.read_lookup_mix ~rate ~duration ~seed:97 ()
                  in
                  [ rate2 r.Nhfsstone.read_rate ]);
            })
          transports)
      configs
  in
  {
    sp_id = "table1";
    sp_title = "Achieved read rate (reads/sec) by transport and interconnect";
    sp_header = "interconnect" :: List.map (fun (n, _) -> n) transports;
    sp_cells = cells;
    sp_assemble =
      (fun outs ->
        List.map2
          (fun (row_label, _, _, _) per_transport ->
            txt row_label :: List.concat per_transport)
          configs
          (chunk (List.length transports) outs));
  }

let graph6_spec scale =
  let loads = sweep_loads scale and duration = sweep_duration scale in
  let cpu_cell name transport load =
    {
      cell_label = Printf.sprintf "graph6/load%g/%s" load name;
      cell_run =
        (fun ctx ->
          let world = make_world ~ctx ~topology:"lan" () in
          let per_rpc =
            drive ~label:(Printf.sprintf "graph6/%s" name) world (fun () ->
                Fileset.preload_server world.server standard_fileset;
                let m = mount_in world (mount_opts_for ~transport ~topology:"lan") in
                let cpu = Node.cpu world.topo.Topology.server in
                let busy0 = Cpu.busy_time cpu
                and served0 = Nfs_server.rpcs_served world.server in
                let _ =
                  Nhfsstone.run m standard_fileset
                    {
                      Nhfsstone.rate = load;
                      duration;
                      children = 4;
                      mix = Nhfsstone.read_lookup_mix;
                      seed = 13;
                    }
                in
                let served = Nfs_server.rpcs_served world.server - served0 in
                if served = 0 then 0.0
                else (Cpu.busy_time cpu -. busy0) /. float_of_int served)
          in
          [ ms per_rpc ]);
    }
  in
  {
    sp_id = "graph6";
    sp_title = "Server CPU overhead per RPC, UDP vs TCP, read mix";
    sp_header = [ "load(rpc/s)"; "udp CPU(ms/rpc)"; "tcp CPU(ms/rpc)" ];
    sp_cells =
      List.concat_map
        (fun load -> [ cpu_cell "udp" `Udp_fixed load; cpu_cell "tcp" `Tcp load ])
        loads;
    sp_assemble =
      (fun outs ->
        List.map2
          (fun load pair -> rate1 load :: List.concat pair)
          loads (chunk 2 outs));
  }

let graph7_spec scale =
  let duration = match scale with Quick -> 60.0 | Full -> 300.0 in
  let cell =
    {
      cell_label = "graph7/trace";
      cell_run =
        (fun ctx ->
          let world = make_world ~ctx ~topology:"campus" () in
          let rtts, rtos =
            drive ~label:"graph7" world (fun () ->
                Fileset.preload_server world.server standard_fileset;
                let m =
                  mount_in world (mount_opts_for ~transport:`Udp_dynamic ~topology:"campus")
                in
                Client_transport.enable_read_trace (Nfs_client.transport m);
                let _ =
                  Nhfsstone.run m standard_fileset
                    {
                      Nhfsstone.rate = 12.0;
                      duration;
                      children = 4;
                      mix = Nhfsstone.read_lookup_mix;
                      seed = 7;
                    }
                in
                let x = Nfs_client.transport m in
                (Client_transport.read_rtt_trace x, Client_transport.read_rto_trace x))
          in
          let keep_every n l = List.filteri (fun i _ -> i mod n = 0) l in
          let stride = max 1 (List.length rtts / 60) in
          List.concat
            (List.map2
               (fun (t, rtt) (_, rto) -> [ sec2 t; ms rtt; ms rto ])
               (keep_every stride rtts) (keep_every stride rtos)));
    }
  in
  {
    sp_id = "graph7";
    sp_title = "Trace of read RPC RTT and dynamic RTO = A+4D";
    sp_header = [ "time(s)"; "rtt(ms)"; "rto(ms)" ];
    sp_cells = [ cell ];
    sp_assemble = (fun outs -> chunk 3 (List.concat outs));
  }

let server_comparison ~id ~title ~mix ~scale =
  let loads = sweep_loads scale and duration = sweep_duration scale in
  let profiles =
    [
      ("reno", Nfs_server.reno_profile);
      ( "reno-nonc",
        {
          Nfs_server.reno_profile with
          Nfs_server.fs_config =
            { Fs.reno_config with Fs.name_cache = false };
        } );
      ("ultrix", Nfs_server.reference_port_profile);
    ]
  in
  let cells =
    List.concat_map
      (fun load ->
        List.map
          (fun (name, profile) ->
            {
              cell_label = Printf.sprintf "%s/load%g/%s" id load name;
              cell_run =
                (fun ctx ->
                  let r =
                    one_nhfsstone_run ~ctx ~label:name ~server_profile:profile
                      ~topology:"lan"
                      ~mount_opts:(mount_opts_for ~transport:`Udp_fixed ~topology:"lan")
                      ~mix ~rate:load ~duration ~seed:23 ()
                  in
                  [ ms r.Nhfsstone.mean_op_latency ]);
            })
          profiles)
      loads
  in
  {
    sp_id = id;
    sp_title = title;
    sp_header = "load(rpc/s)" :: List.map (fun (n, _) -> n ^ " RTT(ms)") profiles;
    sp_cells = cells;
    sp_assemble =
      (fun outs ->
        List.map2
          (fun load per_profile -> rate1 load :: List.concat per_profile)
          loads
          (chunk (List.length profiles) outs));
  }

let graph8_spec scale =
  server_comparison ~id:"graph8"
    ~title:"Lookup mix: Reno vs Reno-without-server-name-cache vs reference port"
    ~mix:Nhfsstone.lookup_mix ~scale

let graph9_spec scale =
  server_comparison ~id:"graph9"
    ~title:"Read/lookup mix: Reno vs Reno-without-server-name-cache vs reference port"
    ~mix:Nhfsstone.read_lookup_mix ~scale

(* ------------------------------------------------------------------ *)
(* Modified Andrew Benchmark (Tables 2-4)                             *)
(* ------------------------------------------------------------------ *)

let andrew_config = function
  | Quick ->
      {
        Andrew.default_config with
        Andrew.source_files = 20;
        header_files = 8;
        compile_instructions_per_byte = 400.0;
      }
  | Full -> Andrew.default_config

let run_andrew ~ctx ~label ~scale ~client_opts ~server_profile ~client_mips
    ~client_nic () =
  let params =
    { Topology.default_params with Topology.client_mips; client_nic }
  in
  let world = make_world ~params ~server_profile ~run_label:label ~ctx ~topology:"lan" () in
  drive ~label world (fun () ->
      let m = mount_in world client_opts in
      Andrew.run m ~config:(andrew_config scale) ())

let table2_spec scale =
  let runs =
    [
      ("Reno", Nfs_client.reno_mount, Nfs_server.reno_profile);
      ("Reno-TCP", { Nfs_client.reno_tcp_mount with Nfs_client.mss = 1460 }, Nfs_server.reno_profile);
      ("Reno-nopush", Nfs_client.reno_nopush_mount, Nfs_server.reno_profile);
      ("Reno-v3", Nfs_client.v3_mount, Nfs_server.reno_profile);
      ("Ultrix2.2", Nfs_client.ultrix_mount, Nfs_server.reference_port_profile);
    ]
  in
  {
    sp_id = "table2";
    sp_title = "Modified Andrew Benchmark, MicroVAXII client (seconds)";
    sp_header = [ "OS/Phase"; "I-IV"; "V" ];
    sp_cells =
      List.map
        (fun (name, opts, profile) ->
          {
            cell_label = "table2/" ^ name;
            cell_run =
              (fun ctx ->
                let r =
                  run_andrew ~ctx ~label:name ~scale ~client_opts:opts
                    ~server_profile:profile ~client_mips:0.9
                    ~client_nic:Nic.deqna_tuned ()
                in
                [ sec1 r.Andrew.time_i_iv; sec1 r.Andrew.time_v ]);
          })
        runs;
    sp_assemble =
      (fun outs ->
        List.map2 (fun (name, _, _) out -> txt name :: out) runs outs);
  }

let table3_spec scale =
  let runs =
    [
      ("Reno", Nfs_client.reno_mount, Nfs_server.reno_profile);
      ("Reno-noconsist", Nfs_client.noconsist_mount, Nfs_server.reno_profile);
      ("Reno-v3", Nfs_client.v3_mount, Nfs_server.reno_profile);
      ("Ultrix2.2", Nfs_client.ultrix_mount, Nfs_server.reference_port_profile);
    ]
  in
  let interesting =
    [ "getattr"; "setattr"; "read"; "write"; "write3"; "commit"; "lookup"; "readdir" ]
  in
  (* Each cell reduces its Andrew run to the per-procedure counts the
     table needs; assembly transposes runs into rows. *)
  let cells =
    List.map
      (fun (name, opts, profile) ->
        {
          cell_label = "table3/" ^ name;
          cell_run =
            (fun ctx ->
              let r =
                run_andrew ~ctx ~label:name ~scale ~client_opts:opts
                  ~server_profile:profile ~client_mips:0.9
                  ~client_nic:Nic.deqna_tuned ()
              in
              let c proc =
                try List.assoc proc r.Andrew.rpc_counts with Not_found -> 0
              in
              let other =
                List.fold_left
                  (fun acc (n, k) -> if List.mem n interesting then acc else acc + k)
                  0 r.Andrew.rpc_counts
              in
              List.map (fun proc -> count (c proc)) interesting
              @ [ count other; count r.Andrew.total_rpcs ]);
        })
      runs
  in
  let row_labels =
    List.map String.capitalize_ascii interesting @ [ "Other"; "Total" ]
  in
  {
    sp_id = "table3";
    sp_title = "Modified Andrew Benchmark RPC counts, MicroVAXII client";
    sp_header = "RPC" :: List.map (fun (n, _, _) -> n) runs;
    sp_cells = cells;
    sp_assemble =
      (fun outs ->
        List.mapi
          (fun i label -> txt label :: List.map (fun col -> List.nth col i) outs)
          row_labels);
  }

let table4_spec scale =
  let runs =
    [
      ("Reno", Nfs_client.reno_mount, Nfs_server.reno_profile);
      ("Reno-v3", Nfs_client.v3_mount, Nfs_server.reno_profile);
      ("Ultrix2.2", Nfs_client.ultrix_mount, Nfs_server.reference_port_profile);
    ]
  in
  {
    sp_id = "table4";
    sp_title = "Modified Andrew Benchmark, DS3100 client (seconds)";
    sp_header = [ "OS/Phase"; "I-IV"; "V" ];
    sp_cells =
      List.map
        (fun (name, opts, profile) ->
          {
            cell_label = "table4/" ^ name;
            cell_run =
              (fun ctx ->
                let r =
                  run_andrew ~ctx ~label:name ~scale ~client_opts:opts
                    ~server_profile:profile ~client_mips:14.0
                    ~client_nic:Nic.fast_station ()
                in
                [ sec1 r.Andrew.time_i_iv; sec1 r.Andrew.time_v ]);
          })
        runs;
    sp_assemble =
      (fun outs ->
        List.map2 (fun (name, _, _) out -> txt name :: out) runs outs);
  }

(* ------------------------------------------------------------------ *)
(* Create-Delete (Table 5)                                            *)
(* ------------------------------------------------------------------ *)

let table5_spec scale =
  let iterations = match scale with Quick -> 5 | Full -> 20 in
  let sizes = [ ("No data", 0); ("10Kbytes", 10240); ("100Kbytes", 102400) ] in
  let local_cell bytes =
    (* Purely local: no network, nothing to trace. *)
    let sim = Sim.create () in
    let cpu = Cpu.create sim ~mips:0.9 in
    let disk = Disk.create sim () in
    let fs = Fs.create sim cpu disk Fs.local_config in
    let result = ref None in
    Proc.spawn sim (fun () ->
        result :=
          Some
            (Create_delete.run_local sim cpu fs
               { Create_delete.data_bytes = bytes; iterations }));
    Sim.run sim;
    Option.get !result
  in
  let nfs_cell ctx label opts bytes =
    let world = make_world ~run_label:label ~ctx ~topology:"lan" () in
    drive ~label world (fun () ->
        let m = mount_in world opts in
        Create_delete.run_nfs m { Create_delete.data_bytes = bytes; iterations })
  in
  let configs =
    [
      ("Local", `Local);
      ("write thru", `Nfs { Nfs_client.reno_mount with Nfs_client.write_policy = Nfs_client.Write_through });
      ("async,4biod", `Nfs { Nfs_client.reno_mount with Nfs_client.write_policy = Nfs_client.Async; num_biods = 4 });
      ("async,16biod", `Nfs { Nfs_client.reno_mount with Nfs_client.write_policy = Nfs_client.Async; num_biods = 16 });
      ("delay wrt.", `Nfs Nfs_client.reno_mount);
      ("no consist", `Nfs Nfs_client.noconsist_mount);
      ("v3 commit", `Nfs Nfs_client.v3_mount);
    ]
  in
  let cells =
    List.concat_map
      (fun (row_label, kind) ->
        List.map
          (fun (size_label, bytes) ->
            let label = Printf.sprintf "table5/%s/%s" row_label size_label in
            {
              cell_label = label;
              cell_run =
                (fun ctx ->
                  [
                    msr
                      (match kind with
                      | `Local -> local_cell bytes
                      | `Nfs opts -> nfs_cell ctx label opts bytes);
                  ]);
            })
          sizes)
      configs
  in
  {
    sp_id = "table5";
    sp_title = "Create-Delete benchmark (msec per iteration), MicroVAXII";
    sp_header = "Config" :: List.map fst sizes;
    sp_cells = cells;
    sp_assemble =
      (fun outs ->
        List.map2
          (fun (row_label, _) per_size -> txt row_label :: List.concat per_size)
          configs
          (chunk (List.length sizes) outs));
  }

(* ------------------------------------------------------------------ *)
(* Section 3: NIC tuning                                              *)
(* ------------------------------------------------------------------ *)

let section3_spec scale =
  let duration = sweep_duration scale *. 2.0 in
  let nic_cell name nic =
    {
      cell_label = "section3/" ^ name;
      cell_run =
        (fun ctx ->
          let params = { Topology.default_params with Topology.server_nic = nic } in
          let world = make_world ~params ~run_label:name ~ctx ~topology:"lan" () in
          let cpu_per_rpc, copied_per_rpc =
            drive ~label:("section3/" ^ name) world (fun () ->
                Fileset.preload_server world.server standard_fileset;
                let m = mount_in world (mount_opts_for ~transport:`Udp_fixed ~topology:"lan") in
                let cpu = Node.cpu world.topo.Topology.server in
                let ctr = Node.copy_counters world.topo.Topology.server in
                let busy0 = Cpu.busy_time cpu
                and served0 = Nfs_server.rpcs_served world.server
                and copied0 = ctr.Renofs_mbuf.Mbuf.Counters.bytes_copied in
                let _ =
                  Nhfsstone.run m standard_fileset
                    {
                      Nhfsstone.rate = 20.0;
                      duration;
                      children = 4;
                      mix = Nhfsstone.read_lookup_mix;
                      seed = 5;
                    }
                in
                let served = Nfs_server.rpcs_served world.server - served0 in
                let busy = Cpu.busy_time cpu -. busy0 in
                let copied = ctr.Renofs_mbuf.Mbuf.Counters.bytes_copied - copied0 in
                ( (if served = 0 then 0.0 else busy /. float_of_int served),
                  if served = 0 then 0 else copied / served ))
          in
          [ ms cpu_per_rpc; byte_count copied_per_rpc ]);
    }
  in
  {
    sp_id = "section3";
    sp_title = "Server CPU with stock vs tuned network interface handling";
    sp_header = [ "driver"; "CPU(ms/rpc)"; "bytes copied/rpc" ];
    sp_cells = [ nic_cell "stock" Nic.deqna_stock; nic_cell "tuned" Nic.deqna_tuned ];
    sp_assemble =
      (fun outs ->
        match outs with
        | [ ([ stock_cpu; _ ] as stock); ([ tuned_cpu; _ ] as tuned) ] ->
            let sc = float_of_value stock_cpu and tc = float_of_value tuned_cpu in
            let reduction = if sc > 0.0 then (sc -. tc) /. sc *. 100.0 else 0.0 in
            [
              txt "stock (copy + tx intr)" :: stock;
              txt "tuned (map, no tx intr)" :: tuned;
              [ txt "reduction"; pct_raw reduction; txt "-" ];
            ]
        | _ -> invalid_arg "section3: unexpected cell shape");
  }

(* ------------------------------------------------------------------ *)
(* Extension ablation: the lease consistency protocol                 *)
(* ------------------------------------------------------------------ *)

let leases_spec scale =
  (* The paper's conclusion — "a cache consistency protocol would reduce
     the number of write RPCs by at least half" — checked against the
     NQNFS-style lease extension: MAB RPC economy plus Create-Delete
     latency, with noconsist as the unsafe optimistic bound. *)
  let cfg = andrew_config scale in
  let iterations = match scale with Quick -> 5 | Full -> 15 in
  let runs =
    [
      ("Reno (push-on-close)", Nfs_client.reno_mount);
      ("Leases (consistent)", Nfs_client.lease_mount);
      ("noconsist (unsafe bound)", Nfs_client.noconsist_mount);
    ]
  in
  let cells =
    List.map
      (fun (name, opts) ->
        {
          cell_label = "leases/" ^ name;
          cell_run =
            (fun ctx ->
              let world = make_world ~run_label:name ~ctx ~topology:"lan" () in
              let mab =
                drive ~label:name world (fun () ->
                    let m = mount_in world opts in
                    Andrew.run m ~config:cfg ())
              in
              let cd =
                let world = make_world ~run_label:name ~ctx ~topology:"lan" () in
                drive ~label:name world (fun () ->
                    let m = mount_in world opts in
                    Create_delete.run_nfs m
                      { Create_delete.data_bytes = 102400; iterations })
              in
              let c n = try List.assoc n mab.Andrew.rpc_counts with Not_found -> 0 in
              [
                count (c "write");
                count (c "read");
                count (c "getattr" + c "getlease");
                msr cd;
              ]);
        })
      runs
  in
  {
    sp_id = "leases";
    sp_title = "Lease consistency ablation: MAB RPCs and Create-Delete 100K";
    sp_header = [ "client"; "MAB writes"; "MAB reads"; "MAB getattr+lease"; "CD-100K (ms)" ];
    sp_cells = cells;
    sp_assemble =
      (fun outs -> List.map2 (fun (name, _) out -> txt name :: out) runs outs);
  }

(* ------------------------------------------------------------------ *)
(* Extension: server characterization under many clients [Keith90]    *)
(* ------------------------------------------------------------------ *)

let scaling_spec scale =
  let duration = match scale with Quick -> 25.0 | Full -> 120.0 in
  let per_client_rate = 12.0 in
  let counts = match scale with Quick -> [ 1; 2; 4 ] | Full -> [ 1; 2; 4; 6; 8 ] in
  let client_cell n =
    let label = Printf.sprintf "scaling-%d" n in
    {
      cell_label = label;
      cell_run =
        (fun ctx ->
          let sim = Sim.create () in
          let topo =
            Topology.build sim
              {
                Topology.shape = Topology.Star;
                clients = n;
                params = Topology.default_params;
              }
          in
          let clients = topo.Topology.clients in
          attach_observers ctx sim topo label;
          let sudp = Udp.install topo.Topology.server in
          let stcp = Tcp.install topo.Topology.server in
          let server =
            Nfs_server.create topo.Topology.server ~profile:Nfs_server.reno_profile
              ~udp:sudp ~tcp:stcp ()
          in
          Nfs_server.start server;
          let finished = ref 0 in
          let achieved = ref 0.0 and latency = ref 0.0 in
          let ready = Proc.Ivar.create sim in
          let iostat = ref None in
          Proc.spawn sim (fun () ->
              Fileset.preload_server server standard_fileset;
              (* Measure server CPU only over the loaded phase. *)
              iostat := Some (Renofs_engine.Iostat.start sim (Node.cpu topo.Topology.server) ());
              Proc.Ivar.fill ready ());
          List.iteri
            (fun i client ->
              let cudp = Udp.install client in
              let ctcp = Tcp.install client in
              Proc.spawn sim (fun () ->
                  Proc.Ivar.read ready;
                  let m =
                    Nfs_client.mount ~udp:cudp ~tcp:ctcp
                      ~server:(Topology.server_id topo)
                      ~root:(Nfs_server.root_fhandle server)
                      Nfs_client.reno_mount
                  in
                  let r =
                    Nhfsstone.run m standard_fileset
                      {
                        Nhfsstone.rate = per_client_rate;
                        duration;
                        children = 3;
                        mix = Nhfsstone.read_lookup_mix;
                        seed = 31 + i;
                      }
                  in
                  achieved := !achieved +. r.Nhfsstone.achieved;
                  latency := !latency +. r.Nhfsstone.mean_op_latency;
                  incr finished))
            clients;
          let guard = ref 0 in
          while !finished < n do
            incr guard;
            if !guard > 100_000 then
              raise (Driver_stuck (stuck_message ~label ~windows:!guard sim));
            Sim.run ~until:(Sim.now sim +. 50.0) sim
          done;
          let util =
            match !iostat with
            | Some io ->
                Renofs_engine.Iostat.stop io;
                Renofs_engine.Iostat.mean_utilization io
            | None -> 0.0
          in
          [
            rate1 (float_of_int n *. per_client_rate);
            rate1 !achieved;
            ms (!latency /. float_of_int n);
            pct0 util;
          ]);
    }
  in
  {
    sp_id = "scaling";
    sp_title = "Server characterization: aggregate throughput vs client count";
    sp_header = [ "clients"; "offered (op/s)"; "achieved (op/s)"; "mean latency (ms)"; "server CPU" ];
    sp_cells = List.map client_cell counts;
    sp_assemble =
      (fun outs -> List.map2 (fun n out -> count n :: out) counts outs);
  }

(* ------------------------------------------------------------------ *)
(* Fleet: sharded multi-server scaling                                *)
(* ------------------------------------------------------------------ *)

(* Tiny per-shard subtree: a fleet world preloads one per mount point,
   so at 100 clients the world still holds 400 files. *)
let fleet_fileset =
  Fileset.generate ~dirs:2 ~files_per_dir:2 ~file_size:8192 ~long_names:false

(* A single backbone router carries small fleets; 8 servers and up get
   a 2x4 fat tree so the fabric is not the first thing to saturate. *)
let fleet_tier n_servers =
  if n_servers >= 8 then Topology.Fat_tree { spines = 2; leaves = 4 }
  else Topology.Backbone 1

let ratio2 v = Float (v, Count, 2)

let fleet_cell ~clients:n ~servers:n_srv ~duration ~per_client_rate =
  let label = Printf.sprintf "fleet-%dc-%ds" n n_srv in
  {
    cell_label = label;
    cell_run =
      (fun ctx ->
        let sim = Sim.create () in
        let topo =
          Topology.build_graph sim
            {
              Topology.g_servers = n_srv;
              g_clients = n;
              g_tier = fleet_tier n_srv;
              g_wan_fraction = 0.0;
              g_params = Topology.default_params;
            }
        in
        attach_observers ctx sim topo label;
        (* One shard per client, hash-placed across the servers. *)
        let fleet =
          Fleet.create ~policy:Fleet.Hash ~shards:n topo.Topology.servers
        in
        (* 5ms buckets to 10s: congestion collapse on the 1-server cell
           pushes p95 into whole seconds of RTO backoff. *)
        let hist = Stats.Hist.create ~bucket_width:5.0 ~buckets:2000 in
        let ready = Proc.Ivar.create sim in
        Proc.spawn sim (fun () ->
            Fleet.provision fleet;
            Fleet.iter_shards fleet (fun ~shard ~server ->
                Fileset.preload_under server ~path:shard fleet_fileset);
            Proc.Ivar.fill ready ());
        let finished = ref 0 in
        let achieved = ref 0.0 in
        List.iteri
          (fun i client ->
            let cudp = Udp.install client in
            Proc.spawn sim (fun () ->
                Proc.Ivar.read ready;
                (* Stagger the mount storm a little, as rc.local would. *)
                Proc.sleep sim (float_of_int i *. 0.003);
                let m =
                  Fleet.mount_shard fleet ~udp:cudp
                    ~shard:(Printf.sprintf "/home%d" i)
                    Nfs_client.reno_mount
                in
                let r =
                  Nhfsstone.run ~latency_hist:hist m fleet_fileset
                    {
                      Nhfsstone.rate = per_client_rate;
                      duration;
                      children = 1;
                      mix = Nhfsstone.read_lookup_mix;
                      seed = 31 + i;
                    }
                in
                achieved := !achieved +. r.Nhfsstone.achieved;
                incr finished))
          topo.Topology.clients;
        let guard = ref 0 in
        while !finished < n do
          incr guard;
          if !guard > 100_000 then
            raise (Driver_stuck (stuck_message ~label ~windows:!guard sim));
          Sim.run ~until:(Sim.now sim +. 50.0) sim
        done;
        let p95 =
          if Stats.Hist.count hist = 0 then 0.0
          else
            (* Clip at the histogram ceiling so a collapsed cell reports
               the 10s cap, not an unprintable infinity. *)
            Float.min (Stats.Hist.quantile hist 0.95) 10_000.0
        in
        [
          rate1 (float_of_int n *. per_client_rate);
          rate1 !achieved;
          msr p95;
          ratio2 (Fleet.balance fleet);
        ]);
  }

let fleet_matrix scale =
  let client_counts =
    match scale with Quick -> [ 100 ] | Full -> [ 100; 1_000; 10_000 ]
  in
  List.concat_map
    (fun c -> List.map (fun s -> (c, s)) [ 1; 4; 16 ])
    client_counts

let fleet_spec scale =
  let duration = match scale with Quick -> 6.0 | Full -> 30.0 in
  let per_client_rate = 6.0 in
  let matrix = fleet_matrix scale in
  {
    sp_id = "fleet";
    sp_title = "Sharded fleet: aggregate throughput vs server count";
    sp_header =
      [
        "clients";
        "servers";
        "offered (op/s)";
        "achieved (op/s)";
        "p95 latency (ms)";
        "balance (max/mean)";
      ];
    sp_cells =
      List.map
        (fun (c, s) -> fleet_cell ~clients:c ~servers:s ~duration ~per_client_rate)
        matrix;
    sp_assemble =
      (fun outs ->
        List.map2 (fun (c, s) out -> count c :: count s :: out) matrix outs);
  }

(* ------------------------------------------------------------------ *)
(* Chaos: fault schedules under load, with invariant verdicts         *)
(* ------------------------------------------------------------------ *)

(* Content is a function of (file, offset, round) so overwrites change
   the bytes and the durability check compares real data, not zeros. *)
let chaos_payload ~file ~off ~round ~len =
  Bytes.init len (fun i -> Char.chr ((file * 131 + off * 7 + round * 13 + i) land 0xff))

(* Steady write/read mix over a small fixed fileset.  Nothing is ever
   unlinked, so every acknowledged write must still be readable from
   the server afterwards — the workload half of the durability
   invariant. *)
let chaos_drive world m ~duration =
  let sim = world.sim in
  let t0 = Sim.now sim in
  let fds =
    Array.init 4 (fun i -> Nfs_client.create m (Printf.sprintf "chaos%d" i))
  in
  let block = 1024 in
  let round = ref 0 in
  while Sim.now sim -. t0 < duration do
    let k = !round mod Array.length fds in
    let off = (!round / Array.length fds) mod 8 * block in
    Nfs_client.write m fds.(k) ~off
      (chaos_payload ~file:k ~off ~round:!round ~len:block);
    if !round mod 3 = 0 then ignore (Nfs_client.read m fds.(k) ~off ~len:block);
    if !round mod 5 = 4 then Nfs_client.fsync m fds.(k);
    Proc.sleep sim 0.25;
    incr round
  done;
  Nfs_client.flush_all m;
  Array.iter (fun fd -> Nfs_client.close m fd) fds

let chaos_cell ?(seed = 0) ~schedule ~tname ~opts ~duration () =
  let label = Printf.sprintf "chaos/%s/%s" schedule.Fault.name tname in
  {
    cell_label = label;
    cell_run =
      (fun ctx ->
        (* The invariant checker needs the event stream even when the
           caller did not ask for a trace: give the run a private sink. *)
        let sink =
          match ctx.trace with
          | Some tr -> tr
          | None -> Trace.create ~capacity:65536 ()
        in
        let ctx = { ctx with trace = Some sink; faults = Some schedule } in
        (* seed 0 = the historical default world, bit-for-bit. *)
        let params =
          if seed = 0 then Topology.default_params
          else { Topology.default_params with Topology.seed = seed }
        in
        let world = make_world ~params ~run_label:label ~ctx ~topology:"lan" () in
        let start = Sim.now world.sim in
        let verdicts, retrans, recovery, elapsed =
          drive ~label world (fun () ->
              let m = mount_in world opts in
              chaos_drive world m ~duration;
              let fs = Nfs_server.fs world.server in
              let read_back ~file ~off ~len =
                try Some (Fs.read fs (Fs.vnode_by_ino fs file) ~off ~len)
                with _ -> None
              in
              let records = Trace.to_list sink in
              ( Fault.Check.check_all ~read_back records,
                Client_transport.retransmits (Nfs_client.transport m),
                Fault.Check.recovery_time records,
                Sim.now world.sim -. start ))
        in
        [
          txt schedule.Fault.name;
          txt tname;
          sec2 elapsed;
          count retrans;
          ms recovery;
          txt (Fault.Check.summary verdicts);
        ]);
  }

let chaos_spec ?seed scale =
  let duration = match scale with Quick -> 10.0 | Full -> 14.0 in
  let schedules =
    match scale with
    | Quick -> List.filter_map Fault.find_builtin [ "crash"; "flaky"; "partition" ]
    | Full -> Fault.builtins
  in
  {
    sp_id = "chaos";
    sp_title = "Fault schedules under load: recovery cost and invariant verdicts";
    sp_header =
      [ "schedule"; "transport"; "elapsed(s)"; "retrans"; "recovery(ms)"; "invariants" ];
    sp_cells =
      List.concat_map
        (fun schedule ->
          List.map
            (fun (tname, opts) ->
              chaos_cell ?seed ~schedule ~tname ~opts ~duration ())
            (robustness_mounts ~topology:"lan"))
        schedules;
    sp_assemble = (fun outs -> outs);
  }

(* ------------------------------------------------------------------ *)
(* Fuzz: seeded wire-mangling sweeps                                   *)
(* ------------------------------------------------------------------ *)

(* Each profile maps a seed to a schedule of wire-mangling actions over
   every link.  Rates are high enough that a few sim-seconds of traffic
   sees dozens of damaged packets, low enough that hard-mount
   retransmission always gets a clean copy through eventually. *)
let fuzz_profile_actions =
  let m ~rate seed = { Fault.at = 1.0; duration = 4.0; link = "*"; rate; seed } in
  [
    ("corrupt", fun seed -> [ Fault.Corrupt (m ~rate:0.08 seed) ]);
    ("truncate", fun seed -> [ Fault.Truncate (m ~rate:0.08 seed) ]);
    ("duplicate", fun seed -> [ Fault.Duplicate (m ~rate:0.15 seed) ]);
    ("reorder", fun seed -> [ Fault.Reorder (m ~rate:0.15 seed) ]);
    ( "storm",
      fun seed ->
        [
          Fault.Corrupt (m ~rate:0.04 seed);
          Fault.Truncate (m ~rate:0.04 (seed + 1));
          Fault.Duplicate (m ~rate:0.08 (seed + 2));
          Fault.Reorder (m ~rate:0.08 (seed + 3));
        ] );
  ]

let fuzz_profiles = List.map fst fuzz_profile_actions

(* Like [chaos_drive], but returns the ledger of extents the client
   believes it wrote — the expected side of the end-to-end
   data-integrity check, which server-side digests cannot provide. *)
let fuzz_drive world m ~duration =
  let sim = world.sim in
  let t0 = Sim.now sim in
  let fds =
    Array.init 4 (fun i -> Nfs_client.create m (Printf.sprintf "fuzz%d" i))
  in
  let block = 1024 in
  let ledger : (int * int, bytes) Hashtbl.t = Hashtbl.create 64 in
  let round = ref 0 in
  while Sim.now sim -. t0 < duration do
    let k = !round mod Array.length fds in
    let off = (!round / Array.length fds) mod 8 * block in
    let data = chaos_payload ~file:k ~off ~round:!round ~len:block in
    Nfs_client.write m fds.(k) ~off data;
    Hashtbl.replace ledger (k, off) data;
    if !round mod 3 = 0 then ignore (Nfs_client.read m fds.(k) ~off ~len:block);
    if !round mod 5 = 4 then Nfs_client.fsync m fds.(k);
    Proc.sleep sim 0.25;
    incr round
  done;
  Nfs_client.flush_all m;
  Array.iter (fun fd -> Nfs_client.close m fd) fds;
  Hashtbl.fold (fun (file, off) data acc -> (file, off, data) :: acc) ledger []
  |> List.sort compare

let fuzz_cell ~seed ~profile ~mk_actions ~tname ~opts ~checksum ~duration =
  let label = Printf.sprintf "fuzz/%d/%s/%s" seed profile tname in
  let row verdict ~retrans ~garbled ~ckdrops =
    [
      count seed;
      txt profile;
      txt tname;
      count retrans;
      count garbled;
      count ckdrops;
      txt verdict;
    ]
  in
  {
    cell_label = label;
    cell_run =
      (fun ctx ->
        let sink =
          match ctx.trace with
          | Some tr -> tr
          | None -> Trace.create ~capacity:65536 ()
        in
        let schedule =
          {
            Fault.name = "fuzz-" ^ profile;
            description = "seeded wire mangling";
            actions = mk_actions seed;
          }
        in
        let ctx = { ctx with trace = Some sink; faults = Some schedule } in
        let params = { Topology.default_params with Topology.seed = seed + 1 } in
        match
          let world =
            make_world ~params ~udp_checksum:checksum ~run_label:label ~ctx
              ~topology:"lan" ()
          in
          drive ~label world (fun () ->
              let m = mount_in world opts in
              let expected = fuzz_drive world m ~duration in
              let fs = Nfs_server.fs world.server in
              (* [check_all] keys files by server inode (from the trace);
                 the client ledger keys them by workload index, resolved
                 through the server namespace at check time. *)
              let read_back_ino ~file ~off ~len =
                try Some (Fs.read fs (Fs.vnode_by_ino fs file) ~off ~len)
                with _ -> None
              in
              let read_back_idx ~file ~off ~len =
                try
                  let vn =
                    Fs.lookup fs (Fs.root fs) (Printf.sprintf "fuzz%d" file)
                  in
                  Some (Fs.read fs vn ~off ~len)
                with _ -> None
              in
              let records = Trace.to_list sink in
              let verdicts =
                Fault.Check.check_all ~read_back:read_back_ino records
                @ [
                    Fault.Check.data_integrity ~expected
                      ~read_back:read_back_idx;
                  ]
              in
              let tr = Nfs_client.transport m in
              let ckdrops =
                Udp.checksum_drops world.client_udp
                + Udp.checksum_drops (Nfs_server.udp_stack world.server)
                + Tcp.checksum_drops world.client_tcp
                + (match Nfs_server.tcp_stack world.server with
                  | Some s -> Tcp.checksum_drops s
                  | None -> 0)
              in
              row
                (Fault.Check.summary verdicts)
                ~retrans:(Client_transport.retransmits tr)
                ~garbled:(Client_transport.garbled tr)
                ~ckdrops)
        with
        | r -> r
        | exception Driver_stuck _ ->
            row "FAIL:stuck" ~retrans:0 ~garbled:0 ~ckdrops:0
        | exception e ->
            row
              ("FAIL:exn:" ^ Printexc.to_string e)
              ~retrans:0 ~garbled:0 ~ckdrops:0);
  }

(* Seed [base_seed + i] drives cell [i]; profile and mount cycle so any
   [seeds >= 20] covers the full profile x (transport + v3) matrix.
   Kept out of the [specs] registry: fuzzing is a robustness gate, not
   a paper artifact. *)
let fuzz_spec ?(seeds = 20) ?(base_seed = 0) ?(checksum = true) scale =
  let duration = match scale with Quick -> 6.0 | Full -> 10.0 in
  let nprofiles = List.length fuzz_profile_actions in
  let mounts = robustness_mounts ~topology:"lan" in
  {
    sp_id = "fuzz";
    sp_title =
      Printf.sprintf
        "Seeded wire-corruption fuzzing (base seed %d, checksums %s)" base_seed
        (if checksum then "on" else "off");
    sp_header =
      [ "seed"; "profile"; "transport"; "retrans"; "garbled"; "ckdrops"; "invariants" ];
    sp_cells =
      List.init seeds (fun i ->
          let profile, mk_actions =
            List.nth fuzz_profile_actions (i mod nprofiles)
          in
          let tname, opts =
            List.nth mounts (i / nprofiles mod List.length mounts)
          in
          fuzz_cell ~seed:(base_seed + i) ~profile ~mk_actions ~tname ~opts
            ~checksum ~duration);
    sp_assemble = (fun outs -> outs);
  }

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let specs =
  [
    ("graph1", graph1_spec);
    ("graph2", graph2_spec);
    ("graph3", graph3_spec);
    ("graph4", graph4_spec);
    ("graph5", graph5_spec);
    ("graph6", graph6_spec);
    ("graph7", graph7_spec);
    ("graph8", graph8_spec);
    ("graph9", graph9_spec);
    ("table1", table1_spec);
    ("table2", table2_spec);
    ("table3", table3_spec);
    ("table4", table4_spec);
    ("table5", table5_spec);
    ("section3", section3_spec);
    ("leases", leases_spec);
    ("scaling", scaling_spec);
    ("fleet", fleet_spec);
    ("chaos", fun scale -> chaos_spec scale);
  ]

let spec ?(scale = Quick) id =
  (* "fleet-quick" pins the fleet family to Quick regardless of the
     requested scale: the make-check smoke stage and quick regression
     baselines address it by that name. *)
  if id = "fleet-quick" then Some (fleet_spec Quick)
  else Option.map (fun mk -> mk scale) (List.assoc_opt id specs)

