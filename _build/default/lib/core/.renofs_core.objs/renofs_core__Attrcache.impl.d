lib/core/attrcache.ml: Hashtbl Nfs_proto Renofs_engine
