lib/workload/nhfsstone.ml: Array Bytes Fileset Hashtbl List Renofs_core Renofs_engine String
