(** Hosts and routers.

    A node owns a CPU, a NIC cost profile, interfaces onto links, a
    static routing table and an IP reassembly buffer.  Sending charges
    the calling process for checksum and per-packet interface work;
    receiving charges interrupt-priority CPU before the datagram reaches
    the transport handler — so a saturated server CPU shows up as RTT,
    exactly as in the paper's graphs. *)

type t

(** A reassembled transport datagram handed to a protocol handler. *)
type datagram = {
  proto : Packet.proto;
  src : int;
  src_port : int;
  dst_port : int;
  payload : Renofs_mbuf.Mbuf.t;
  sum : (int * int) option;
      (** the sender's [(length, checksum)] metadata, if it checksummed —
          see [Packet.t.sum]; the receiving transport verifies it *)
}

type stats = {
  mutable datagrams_sent : int;
  mutable datagrams_received : int;
  mutable packets_forwarded : int;
  mutable no_route_drops : int;
  mutable no_handler_drops : int;
}

val create :
  Renofs_engine.Sim.t ->
  id:int ->
  name:string ->
  mips:float ->
  nic:Nic.profile ->
  rng:Renofs_engine.Rng.t ->
  ?forward_cost:float ->
  unit ->
  t
(** [forward_cost] is CPU seconds per forwarded packet (default 0.3 ms);
    only routers exercise it. *)

val id : t -> int
val name : t -> string
val sim : t -> Renofs_engine.Sim.t
val cpu : t -> Renofs_engine.Cpu.t
val rng : t -> Renofs_engine.Rng.t
val nic : t -> Nic.profile

val set_nic : t -> Nic.profile -> unit
(** Swap NIC profiles (the Section 3 stock-vs-tuned experiment). *)

val copy_counters : t -> Renofs_mbuf.Mbuf.Counters.t
(** This host's mbuf copy/allocation accounting. *)

val stats : t -> stats
val reassembly_timeouts : t -> int

(** Everything a world may hang off a node to watch (or feed) it.
    Build one by overriding {!detached}:
    [{ Node.detached with trace = Some tr }]. *)
type observers = {
  trace : Renofs_trace.Trace.t option;
  metrics : Renofs_metrics.Metrics.run option;
  pool : Renofs_mbuf.Mbuf.Pool.t option;
}

val detached : observers
(** All [None] — the fast path.  A detached node records nothing,
    registers nothing, allocates mbufs straight from the heap, and pays
    one branch per would-be observation. *)

val attach : t -> observers -> unit
(** Wire every observer kind in one call.

    [trace] covers the host's own events ([Frag_lost] from reassembly
    timeouts), every outgoing link direction attached so far, and —
    because the transports and the NFS client/server consult {!trace} —
    everything those layers record on this host.

    [metrics] registers sampled sources for the reassembly buffer
    (in-flight fragments, timeouts), mbuf copy bytes, and every outgoing
    link direction attached so far (busy-time, queue length, drops,
    bytes); upper layers consult {!metrics} at creation time to register
    their own sources, so attach before building them.

    [pool] is the world's shared mbuf free list; the transports and RPC
    layers consult {!pool} to recycle buffer storage across calls.

    Call after {!connect}ing this node ({!connect} propagates to links
    made later, but metrics sources are only registered for links that
    exist now), and attach metrics at most once per run (sources
    re-register). *)

val trace : t -> Renofs_trace.Trace.t option
(** The attached sink, if any.  Upper layers (UDP, TCP, the NFS client
    transport and server) read this on their hot paths; a [None] costs
    one branch. *)

val metrics : t -> Renofs_metrics.Metrics.run option
(** The attached metrics run, if any. *)

val pool : t -> Renofs_mbuf.Mbuf.Pool.t option
(** The attached mbuf pool, if any. *)

val connect :
  t ->
  t ->
  name:string ->
  bandwidth_bps:float ->
  delay:float ->
  mtu:int ->
  queue_limit:int ->
  ?loss:float ->
  unit ->
  Link.t * Link.t
(** Join two nodes with a full-duplex link; returns the [(a_to_b, b_to_a)]
    directions for inspection. *)

val links : t -> Link.t list
(** Outgoing link directions attached so far. *)

val auto_routes : t list -> unit
(** Fill every node's routing table with shortest-hop next hops (BFS);
    call once after all {!connect}s.  Single-homed hosts get a default
    route through their one interface (guarded by a shared
    reachable-set membership test, so destinations outside the world
    still count as [no_route_drops]) instead of a per-destination
    table — semantically identical, but fleet-scale worlds with
    thousands of leaf clients route in O(n) instead of O(n^2). *)

val set_proto_handler :
  t -> ?needs_fiber:bool -> Packet.proto -> (datagram -> unit) -> unit
(** Install the UDP or TCP input function.  The handler runs from a
    CPU-completion event after reassembly and per-datagram input costs.
    By default it is given a process context ({!Proc.run}), so it may
    block — on the CPU, a socket buffer, a timer.  A handler that never
    suspends can pass [~needs_fiber:false] to skip the per-datagram
    fiber allocation; calling anything that suspends from such a
    handler raises [Effect.Unhandled]. *)

val send_datagram :
  t ->
  ?sum:int * int ->
  proto:Packet.proto ->
  dst:int ->
  src_port:int ->
  dst_port:int ->
  Renofs_mbuf.Mbuf.t ->
  unit
(** Route, checksum, fragment and transmit one transport datagram.
    Must run inside a process (it consumes CPU).  Consumes the chain.
    [sum] is checksum metadata carried to the receiver (default none). *)

val send_datagram_k :
  t ->
  ?sum:int * int ->
  proto:Packet.proto ->
  dst:int ->
  src_port:int ->
  dst_port:int ->
  Renofs_mbuf.Mbuf.t ->
  (unit -> unit) ->
  unit
(** {!send_datagram} in continuation-passing style: queues exactly the
    same CPU jobs at the same moments, but needs no process — the final
    callback runs once the last fragment has been handed to its link.
    For event-driven senders (e.g. the cross-traffic generator) that
    would otherwise keep a fiber alive just to block on the NIC. *)
