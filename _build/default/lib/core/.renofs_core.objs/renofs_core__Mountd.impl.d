lib/core/mountd.ml: List Mount_proto Nfs_server Printf Renofs_engine Renofs_net Renofs_rpc Renofs_transport Renofs_vfs Renofs_xdr String
