(** Background cross-traffic generators.

    The paper's transport tests ran across production campus networks
    "during off peak hours": real but uncontrolled competing load.  We
    model it as bursty on/off UDP flows between two nodes, sharing the
    same links and queues as the NFS traffic. *)

type profile = {
  on_rate : float;  (** datagrams/second while a burst is on *)
  on_mean : float;  (** mean burst duration, seconds *)
  off_mean : float;  (** mean gap between bursts, seconds *)
  sizes : (int * float) array;  (** (datagram bytes, weight) mixture *)
}

val office_lan : profile
(** Light chatter: mostly small packets, occasional bulk. *)

val campus_backbone : profile
(** Heavier bursts of bulk transfers that can briefly exceed an
    80 Mbit/s ring's drain rate and overflow router queues. *)

val start : src:Node.t -> dst:Node.t -> profile -> unit
(** Run the flow forever from [src] to [dst] (UDP port 9, discard).
    Traffic consumes [src]'s CPU to send, like any other datagram. *)

val sink : Node.t -> unit
(** Install a UDP handler that counts and discards; lets cross-traffic
    destinations absorb packets without an NFS stack. *)
