lib/engine/proc.ml: Effect List Queue Sim
