lib/workload/nhfsstone.mli: Fileset Renofs_core
