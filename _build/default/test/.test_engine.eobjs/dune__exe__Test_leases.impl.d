test/test_leases.ml: Alcotest Bytes List Nfs_client Nfs_proto Nfs_server Renofs_core Renofs_engine Renofs_net Renofs_transport Renofs_vfs Renofs_workload
