lib/workload/create_delete.mli: Renofs_core Renofs_engine Renofs_vfs
