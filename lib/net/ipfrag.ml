module Sim = Renofs_engine.Sim
module Mbuf = Renofs_mbuf.Mbuf

type entry = {
  mutable pieces : (int * Mbuf.t) list; (* sorted by offset, disjoint *)
  mutable total : int option; (* known once the last fragment arrives *)
  mutable timer : Sim.timer;
}

type t = {
  sim : Sim.t;
  timeout : float;
  table : (int * int, entry) Hashtbl.t; (* (src, ip_id) *)
  mutable timeout_count : int;
  mutable on_timeout : src:int -> ip_id:int -> unit;
}

let create sim ?(timeout = 15.0) () =
  {
    sim;
    timeout;
    table = Hashtbl.create 32;
    timeout_count = 0;
    on_timeout = (fun ~src:_ ~ip_id:_ -> ());
  }

let set_on_timeout t f = t.on_timeout <- f

let pending t = Hashtbl.length t.table
let timeouts t = t.timeout_count

let covered pieces off =
  List.exists (fun (o, c) -> off >= o && off < o + Mbuf.length c) pieces

let insert_piece pieces off chain =
  let rec go = function
    | [] -> [ (off, chain) ]
    | (o, c) :: rest when off < o -> (off, chain) :: (o, c) :: rest
    | (o, c) :: rest -> (o, c) :: go rest
  in
  go pieces

let complete entry =
  match entry.total with
  | None -> None
  | Some total ->
      let rec contiguous expected = function
        | [] -> expected = total
        | (o, c) :: rest -> o = expected && contiguous (expected + Mbuf.length c) rest
      in
      if contiguous 0 entry.pieces then begin
        let whole = Mbuf.empty () in
        List.iter (fun (_, c) -> Mbuf.append_chain whole c) entry.pieces;
        Some whole
      end
      else None

let insert t (pkt : Packet.t) =
  if not (Packet.is_fragmented pkt) then Some pkt
  else begin
    let key = (pkt.Packet.src, pkt.Packet.ip_id) in
    let entry =
      match Hashtbl.find_opt t.table key with
      | Some e -> e
      | None ->
          let e =
            { pieces = []; total = None; timer = Sim.timer_after t.sim 0.0 ignore }
          in
          Sim.cancel e.timer;
          e.timer <-
            Sim.timer_after t.sim t.timeout (fun () ->
                Hashtbl.remove t.table key;
                t.timeout_count <- t.timeout_count + 1;
                t.on_timeout ~src:(fst key) ~ip_id:(snd key));
          Hashtbl.add t.table key e;
          e
    in
    let off = pkt.Packet.frag_off in
    if not (covered entry.pieces off) then begin
      entry.pieces <- insert_piece entry.pieces off pkt.Packet.payload;
      if not pkt.Packet.more then
        entry.total <- Some (off + Mbuf.length pkt.Packet.payload)
    end;
    match complete entry with
    | None -> None
    | Some whole ->
        Sim.cancel entry.timer;
        Hashtbl.remove t.table key;
        Some
          {
            pkt with
            Packet.frag_off = 0;
            more = false;
            total_data = Mbuf.length whole;
            payload = whole;
          }
  end
