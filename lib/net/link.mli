(** Unidirectional links with serialization, propagation delay, a
    drop-tail output queue and optional random loss.

    One link direction transmits a single packet at a time at its
    bandwidth; a full queue drops arriving packets (the congestion signal
    everything in Section 4 reacts to). *)

type stats = {
  mutable packets_sent : int;
  mutable bytes_sent : int;
  mutable queue_drops : int;
  mutable error_drops : int;
  mutable mangled : int;  (** packets damaged by the {!set_mangle} stage *)
}

type t

val create :
  Renofs_engine.Sim.t ->
  name:string ->
  bandwidth_bps:float ->
  delay:float ->
  queue_limit:int ->
  ?loss:float ->
  ?owner:int ->
  rng:Renofs_engine.Rng.t ->
  deliver:(Packet.t -> unit) ->
  unit ->
  t
(** [loss] is a per-packet random corruption probability applied at the
    receiving end (default 0).  [owner] is the transmitting node's id,
    recorded on trace events (default -1). *)

val set_trace : t -> Renofs_trace.Trace.t option -> unit
(** Attach (or detach) a trace sink.  With a sink, the link records
    [Pkt_enqueue] / [Pkt_deliver] for every packet except background
    discard-port cross-traffic, and [Pkt_drop] for every drop. *)

val send : t -> Packet.t -> unit
(** Enqueue for transmission; silently dropped (and counted) if the queue
    holds [queue_limit] packets. *)

val name : t -> string
val queue_length : t -> int
(** Packets waiting, excluding the one in transmission. *)

val stats : t -> stats

(** {2 Fault-injection hooks}

    Used by [Renofs_fault] to apply loss bursts and link flaps at
    simulated times; harmless to call by hand. *)

val loss : t -> float
val set_loss : t -> float -> unit
(** Change the per-packet corruption probability (clamped to [0..1]);
    applies to packets whose transmission completes after the call. *)

val is_up : t -> bool
val set_up : t -> bool -> unit
(** A downed link drops every newly offered packet (counted as an error
    drop, traced as [Link_down]); packets already queued or in flight
    still deliver.  Links start up. *)

type mangle_op = Corrupt | Truncate | Duplicate | Reorder
(** What the wire-corruption stage can do to a packet that survives
    transmission: flip exactly one payload bit, cut a random tail off
    the payload, deliver an extra deep copy slightly later, or delay the
    packet past its successors. *)

val set_mangle : t -> ?seed:int -> mangle_op -> float -> unit
(** [set_mangle t op rate] sets the per-packet probability of [op]
    (clamped to [0..1]).  The first call allocates the link's mangler
    and seeds its private RNG from [seed] (default 0) mixed with the
    link name, so every link direction draws an independent,
    reproducible stream; later calls reuse the existing RNG and ignore
    [seed].  A link with no mangler configured pays one branch per
    packet.  Mangled packets count in [stats.mangled] and trace as
    [Pkt_mangle]. *)

val mangle_rate : t -> mangle_op -> float
(** The current rate for [op] (0 when no mangler is configured) — lets
    fault schedules save and restore rates around a burst. *)

val utilization : t -> float
(** Fraction of time spent transmitting since creation. *)

val busy_time : t -> float
(** Cumulative transmission seconds — a counter; sampled periodically
    and differentiated, it yields the utilization over each window. *)
