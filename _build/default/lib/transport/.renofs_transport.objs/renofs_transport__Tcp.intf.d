lib/transport/tcp.mli: Renofs_mbuf Renofs_net
