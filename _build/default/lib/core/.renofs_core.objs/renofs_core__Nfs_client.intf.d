lib/core/nfs_client.mli: Client_transport Nfs_proto Renofs_engine Renofs_net Renofs_transport
