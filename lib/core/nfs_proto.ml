module Xdr = Renofs_xdr.Xdr

let program = 100003
let version = 2
let port = 2049
let max_data = 8192
let max_data_v3 = 32768
let fhandle_size = 32
let max_name = 255
let max_path = 1024

type fhandle = int

type stat =
  | NFS_OK
  | NFSERR_PERM
  | NFSERR_NOENT
  | NFSERR_IO
  | NFSERR_ACCES
  | NFSERR_EXIST
  | NFSERR_NOTDIR
  | NFSERR_ISDIR
  | NFSERR_FBIG
  | NFSERR_NOSPC
  | NFSERR_NAMETOOLONG
  | NFSERR_NOTEMPTY
  | NFSERR_STALE

let int_of_stat = function
  | NFS_OK -> 0
  | NFSERR_PERM -> 1
  | NFSERR_NOENT -> 2
  | NFSERR_IO -> 5
  | NFSERR_ACCES -> 13
  | NFSERR_EXIST -> 17
  | NFSERR_NOTDIR -> 20
  | NFSERR_ISDIR -> 21
  | NFSERR_FBIG -> 27
  | NFSERR_NOSPC -> 28
  | NFSERR_NAMETOOLONG -> 63
  | NFSERR_NOTEMPTY -> 66
  | NFSERR_STALE -> 70

let stat_of_int = function
  | 0 -> NFS_OK
  | 1 -> NFSERR_PERM
  | 2 -> NFSERR_NOENT
  | 5 -> NFSERR_IO
  | 13 -> NFSERR_ACCES
  | 17 -> NFSERR_EXIST
  | 20 -> NFSERR_NOTDIR
  | 21 -> NFSERR_ISDIR
  | 27 -> NFSERR_FBIG
  | 28 -> NFSERR_NOSPC
  | 63 -> NFSERR_NAMETOOLONG
  | 66 -> NFSERR_NOTEMPTY
  | 70 -> NFSERR_STALE
  | n -> raise (Xdr.Decode_error (Printf.sprintf "bad nfsstat %d" n))

type ftype = NFNON | NFREG | NFDIR | NFBLK | NFCHR | NFLNK

let int_of_ftype = function
  | NFNON -> 0
  | NFREG -> 1
  | NFDIR -> 2
  | NFBLK -> 3
  | NFCHR -> 4
  | NFLNK -> 5

let ftype_of_int = function
  | 0 -> NFNON
  | 1 -> NFREG
  | 2 -> NFDIR
  | 3 -> NFBLK
  | 4 -> NFCHR
  | 5 -> NFLNK
  | n -> raise (Xdr.Decode_error (Printf.sprintf "bad ftype %d" n))

type time = { seconds : int; useconds : int }

let time_of_float f =
  let s = int_of_float f in
  { seconds = s; useconds = int_of_float ((f -. float_of_int s) *. 1e6) }

let float_of_time t = float_of_int t.seconds +. (float_of_int t.useconds /. 1e6)

type fattr = {
  ftype : ftype;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  size : int;
  blocksize : int;
  rdev : int;
  blocks : int;
  fsid : int;
  fileid : int;
  atime : time;
  mtime : time;
  ctime : time;
}

type sattr = {
  s_mode : int;
  s_uid : int;
  s_gid : int;
  s_size : int;
  s_atime : time option;
  s_mtime : time option;
}

let sattr_none =
  { s_mode = -1; s_uid = -1; s_gid = -1; s_size = -1; s_atime = None; s_mtime = None }

type diropargs = { dir : fhandle; name : string }
type readargs = { read_file : fhandle; offset : int; count : int }
type writeargs = { write_file : fhandle; write_offset : int; data : bytes }
type createargs = { where : diropargs; attributes : sattr }
type renameargs = { from_dir : diropargs; to_dir : diropargs }
type linkargs = { link_from : fhandle; link_to : diropargs }
type symlinkargs = { sym_where : diropargs; sym_target : string; sym_attr : sattr }
type readdirargs = { rd_dir : fhandle; cookie : int; rd_count : int }
type entry = { fileid : int; entry_name : string; entry_cookie : int }

type statfsok = {
  tsize : int;
  bsize : int;
  blocks_total : int;
  blocks_free : int;
  blocks_avail : int;
}

type lookent = { le_entry : entry; le_file : fhandle; le_attr : fattr }

type lease_mode = Lease_read | Lease_write

type leaseargs = {
  lease_file : fhandle;
  lease_mode : lease_mode;
  lease_duration : int;
}

type leaseok = { granted_duration : int; lease_attr : fattr }

(* NFSv3-style asynchronous writes.  UNSTABLE lets the server buffer
   the data volatile; DATA_SYNC/FILE_SYNC demand stability before the
   reply.  The reply's [verf] is the server's per-boot write verifier:
   a change between an unstable WRITE and its covering COMMIT tells the
   client the buffer died in a crash and the range must be rewritten. *)
type stable_how = Unstable | Data_sync | File_sync

type write3args = {
  w3_file : fhandle;
  w3_offset : int;
  w3_stable : stable_how;
  w3_data : bytes;
}

type commitargs = { cm_file : fhandle; cm_offset : int; cm_count : int }
(** [cm_count = 0] commits from [cm_offset] to the end of the file. *)

type write3ok = {
  w3_attr : fattr;
  w3_count : int;
  w3_committed : stable_how;  (** may be stronger than requested *)
  w3_verf : int;
}

type commitok = { cmo_attr : fattr; cmo_verf : int }

type call =
  | Null
  | Getattr of fhandle
  | Setattr of fhandle * sattr
  | Lookup of diropargs
  | Readlink of fhandle
  | Read of readargs
  | Write of writeargs
  | Create of createargs
  | Remove of diropargs
  | Rename of renameargs
  | Link of linkargs
  | Symlink of symlinkargs
  | Mkdir of createargs
  | Rmdir of diropargs
  | Readdir of readdirargs
  | Statfs of fhandle
  | Readdirlook of readdirargs
  | Getlease of leaseargs
  | Write3 of write3args
  | Commit of commitargs

type reply =
  | Rnull
  | Rattr of (fattr, stat) result
  | Rdirop of (fhandle * fattr, stat) result
  | Rreadlink of (string, stat) result
  | Rread of (fattr * bytes, stat) result
  | Rstat of stat
  | Rreaddir of (entry list * bool, stat) result
  | Rstatfs of (statfsok, stat) result
  | Rreaddirlook of (lookent list * bool, stat) result
  | Rlease of (leaseok option, stat) result
  | Rwrite3 of (write3ok, stat) result
  | Rcommit of (commitok, stat) result

let proc_of_call = function
  | Null -> 0
  | Getattr _ -> 1
  | Setattr _ -> 2
  | Lookup _ -> 4
  | Readlink _ -> 5
  | Read _ -> 6
  | Write _ -> 8
  | Create _ -> 9
  | Remove _ -> 10
  | Rename _ -> 11
  | Link _ -> 12
  | Symlink _ -> 13
  | Mkdir _ -> 14
  | Rmdir _ -> 15
  | Readdir _ -> 16
  | Statfs _ -> 17
  | Readdirlook _ -> 18
  | Getlease _ -> 19
  | Write3 _ -> 20
  | Commit _ -> 21

let proc_name = function
  | 0 -> "null"
  | 1 -> "getattr"
  | 2 -> "setattr"
  | 3 -> "root"
  | 4 -> "lookup"
  | 5 -> "readlink"
  | 6 -> "read"
  | 7 -> "writecache"
  | 8 -> "write"
  | 9 -> "create"
  | 10 -> "remove"
  | 11 -> "rename"
  | 12 -> "link"
  | 13 -> "symlink"
  | 14 -> "mkdir"
  | 15 -> "rmdir"
  | 16 -> "readdir"
  | 17 -> "statfs"
  | 18 -> "readdirlook"
  | 19 -> "getlease"
  | 20 -> "write3"
  | 21 -> "commit"
  | n -> Printf.sprintf "proc%d" n

(* COMMIT (21) is idempotent: re-flushing already-stable data changes
   nothing.  WRITE3 (20) is too in the overwrite sense, but is kept out
   of the list to match v2 WRITE's treatment in the duplicate cache. *)
let is_idempotent = function
  | 0 | 1 | 4 | 5 | 6 | 16 | 17 | 18 | 19 | 21 -> true
  | _ -> false

let classify = function 6 | 8 | 16 | 18 | 20 -> `Big | _ -> `Small

let int_of_stable_how = function Unstable -> 0 | Data_sync -> 1 | File_sync -> 2

let stable_how_of_int = function
  | 0 -> Unstable
  | 1 -> Data_sync
  | 2 -> File_sync
  | n -> raise (Xdr.Decode_error (Printf.sprintf "bad stable_how %d" n))

(* ------------------------------------------------------------------ *)
(* XDR pieces                                                         *)
(* ------------------------------------------------------------------ *)

let enc_fhandle enc fh =
  let b = Bytes.make fhandle_size '\000' in
  Bytes.set_int32_be b 0 (Int32.of_int fh);
  Xdr.Enc.opaque_fixed enc b

let dec_fhandle dec =
  let b = Xdr.Dec.opaque_fixed dec fhandle_size in
  Int32.to_int (Bytes.get_int32_be b 0) land 0xFFFFFFFF

let enc_time enc t =
  Xdr.Enc.int enc t.seconds;
  Xdr.Enc.int enc t.useconds

let dec_time dec =
  let seconds = Xdr.Dec.int dec in
  let useconds = Xdr.Dec.int dec in
  { seconds; useconds }

let enc_fattr enc a =
  Xdr.Enc.enum enc (int_of_ftype a.ftype);
  Xdr.Enc.int enc a.mode;
  Xdr.Enc.int enc a.nlink;
  Xdr.Enc.int enc a.uid;
  Xdr.Enc.int enc a.gid;
  Xdr.Enc.int enc a.size;
  Xdr.Enc.int enc a.blocksize;
  Xdr.Enc.int enc a.rdev;
  Xdr.Enc.int enc a.blocks;
  Xdr.Enc.int enc a.fsid;
  Xdr.Enc.int enc a.fileid;
  enc_time enc a.atime;
  enc_time enc a.mtime;
  enc_time enc a.ctime

let dec_fattr dec =
  let ftype = ftype_of_int (Xdr.Dec.enum dec) in
  let mode = Xdr.Dec.int dec in
  let nlink = Xdr.Dec.int dec in
  let uid = Xdr.Dec.int dec in
  let gid = Xdr.Dec.int dec in
  let size = Xdr.Dec.int dec in
  let blocksize = Xdr.Dec.int dec in
  let rdev = Xdr.Dec.int dec in
  let blocks = Xdr.Dec.int dec in
  let fsid = Xdr.Dec.int dec in
  let fileid = Xdr.Dec.int dec in
  let atime = dec_time dec in
  let mtime = dec_time dec in
  let ctime = dec_time dec in
  { ftype; mode; nlink; uid; gid; size; blocksize; rdev; blocks; fsid; fileid;
    atime; mtime; ctime }

(* -1 on the wire means "do not set". *)
let enc_u32_or_neg enc v =
  if v < 0 then Xdr.Enc.u32 enc (-1l) else Xdr.Enc.int enc v

let dec_u32_or_neg dec =
  let v = Xdr.Dec.u32 dec in
  if v = -1l then -1 else Int32.to_int v land 0xFFFFFFFF

let enc_time_or_neg enc = function
  | Some t -> enc_time enc t
  | None ->
      Xdr.Enc.u32 enc (-1l);
      Xdr.Enc.u32 enc (-1l)

let dec_time_or_neg dec =
  let s = Xdr.Dec.u32 dec in
  let u = Xdr.Dec.u32 dec in
  if s = -1l then None
  else
    Some
      {
        seconds = Int32.to_int s land 0xFFFFFFFF;
        useconds = Int32.to_int u land 0xFFFFFFFF;
      }

let enc_sattr enc s =
  enc_u32_or_neg enc s.s_mode;
  enc_u32_or_neg enc s.s_uid;
  enc_u32_or_neg enc s.s_gid;
  enc_u32_or_neg enc s.s_size;
  enc_time_or_neg enc s.s_atime;
  enc_time_or_neg enc s.s_mtime

let dec_sattr dec =
  let s_mode = dec_u32_or_neg dec in
  let s_uid = dec_u32_or_neg dec in
  let s_gid = dec_u32_or_neg dec in
  let s_size = dec_u32_or_neg dec in
  let s_atime = dec_time_or_neg dec in
  let s_mtime = dec_time_or_neg dec in
  { s_mode; s_uid; s_gid; s_size; s_atime; s_mtime }

let enc_diropargs enc d =
  enc_fhandle enc d.dir;
  Xdr.Enc.string enc d.name

let dec_diropargs dec =
  let dir = dec_fhandle dec in
  let name = Xdr.Dec.string dec ~max:max_name in
  { dir; name }

(* ------------------------------------------------------------------ *)
(* Calls                                                              *)
(* ------------------------------------------------------------------ *)

let encode_call ?ctr:_ enc call =
  match call with
  | Null -> ()
  | Getattr fh | Readlink fh | Statfs fh -> enc_fhandle enc fh
  | Setattr (fh, s) ->
      enc_fhandle enc fh;
      enc_sattr enc s
  | Lookup d | Remove d | Rmdir d -> enc_diropargs enc d
  | Read r ->
      enc_fhandle enc r.read_file;
      Xdr.Enc.int enc r.offset;
      Xdr.Enc.int enc r.count;
      Xdr.Enc.int enc 0 (* totalcount, unused *)
  | Write w ->
      enc_fhandle enc w.write_file;
      Xdr.Enc.int enc 0 (* beginoffset, unused *);
      Xdr.Enc.int enc w.write_offset;
      Xdr.Enc.int enc 0 (* totalcount, unused *);
      Xdr.Enc.opaque enc w.data
  | Create c | Mkdir c ->
      enc_diropargs enc c.where;
      enc_sattr enc c.attributes
  | Rename r ->
      enc_diropargs enc r.from_dir;
      enc_diropargs enc r.to_dir
  | Link l ->
      enc_fhandle enc l.link_from;
      enc_diropargs enc l.link_to
  | Symlink s ->
      enc_diropargs enc s.sym_where;
      Xdr.Enc.string enc s.sym_target;
      enc_sattr enc s.sym_attr
  | Readdir r | Readdirlook r ->
      enc_fhandle enc r.rd_dir;
      Xdr.Enc.int enc r.cookie;
      Xdr.Enc.int enc r.rd_count
  | Getlease l ->
      enc_fhandle enc l.lease_file;
      Xdr.Enc.enum enc (match l.lease_mode with Lease_read -> 0 | Lease_write -> 1);
      Xdr.Enc.int enc l.lease_duration
  | Write3 w ->
      enc_fhandle enc w.w3_file;
      Xdr.Enc.int enc w.w3_offset;
      Xdr.Enc.int enc (Bytes.length w.w3_data);
      Xdr.Enc.enum enc (int_of_stable_how w.w3_stable);
      Xdr.Enc.opaque enc w.w3_data
  | Commit c ->
      enc_fhandle enc c.cm_file;
      Xdr.Enc.int enc c.cm_offset;
      Xdr.Enc.int enc c.cm_count

let decode_call ~proc dec =
  match proc with
  | 0 -> Null
  | 1 -> Getattr (dec_fhandle dec)
  | 2 ->
      let fh = dec_fhandle dec in
      Setattr (fh, dec_sattr dec)
  | 4 -> Lookup (dec_diropargs dec)
  | 5 -> Readlink (dec_fhandle dec)
  | 6 ->
      let read_file = dec_fhandle dec in
      let offset = Xdr.Dec.int dec in
      let count = Xdr.Dec.int dec in
      let _total = Xdr.Dec.int dec in
      (* v3 mounts read in 32K-class transfers over the same READ proc. *)
      if count > max_data_v3 then raise (Xdr.Decode_error "read count too large");
      Read { read_file; offset; count }
  | 8 ->
      let write_file = dec_fhandle dec in
      let _begin = Xdr.Dec.int dec in
      let write_offset = Xdr.Dec.int dec in
      let _total = Xdr.Dec.int dec in
      let data = Xdr.Dec.opaque dec ~max:max_data in
      Write { write_file; write_offset; data }
  | 9 ->
      let where = dec_diropargs dec in
      Create { where; attributes = dec_sattr dec }
  | 10 -> Remove (dec_diropargs dec)
  | 11 ->
      let from_dir = dec_diropargs dec in
      Rename { from_dir; to_dir = dec_diropargs dec }
  | 12 ->
      let link_from = dec_fhandle dec in
      Link { link_from; link_to = dec_diropargs dec }
  | 13 ->
      let sym_where = dec_diropargs dec in
      let sym_target = Xdr.Dec.string dec ~max:max_path in
      Symlink { sym_where; sym_target; sym_attr = dec_sattr dec }
  | 14 ->
      let where = dec_diropargs dec in
      Mkdir { where; attributes = dec_sattr dec }
  | 15 -> Rmdir (dec_diropargs dec)
  | 16 | 18 ->
      let rd_dir = dec_fhandle dec in
      let cookie = Xdr.Dec.int dec in
      let rd_count = Xdr.Dec.int dec in
      let args = { rd_dir; cookie; rd_count } in
      if proc = 16 then Readdir args else Readdirlook args
  | 17 -> Statfs (dec_fhandle dec)
  | 19 ->
      let lease_file = dec_fhandle dec in
      let lease_mode =
        match Xdr.Dec.enum dec with
        | 0 -> Lease_read
        | 1 -> Lease_write
        | n -> raise (Xdr.Decode_error (Printf.sprintf "bad lease mode %d" n))
      in
      let lease_duration = Xdr.Dec.int dec in
      Getlease { lease_file; lease_mode; lease_duration }
  | 20 ->
      let w3_file = dec_fhandle dec in
      let w3_offset = Xdr.Dec.int dec in
      let count = Xdr.Dec.int dec in
      let w3_stable = stable_how_of_int (Xdr.Dec.enum dec) in
      let w3_data = Xdr.Dec.opaque dec ~max:max_data_v3 in
      if count <> Bytes.length w3_data then
        raise (Xdr.Decode_error "write3 count does not match data");
      Write3 { w3_file; w3_offset; w3_stable; w3_data }
  | 21 ->
      let cm_file = dec_fhandle dec in
      let cm_offset = Xdr.Dec.int dec in
      let cm_count = Xdr.Dec.int dec in
      Commit { cm_file; cm_offset; cm_count }
  | n -> raise (Xdr.Decode_error (Printf.sprintf "unknown NFS procedure %d" n))

(* ------------------------------------------------------------------ *)
(* Replies                                                            *)
(* ------------------------------------------------------------------ *)

let enc_status enc st = Xdr.Enc.enum enc (int_of_stat st)

let enc_result enc r enc_ok =
  match r with
  | Ok v ->
      enc_status enc NFS_OK;
      enc_ok v
  | Error st -> enc_status enc st

let dec_result dec dec_ok =
  match stat_of_int (Xdr.Dec.enum dec) with
  | NFS_OK -> Ok (dec_ok ())
  | st -> Error st

let encode_reply ?ctr enc reply =
  match reply with
  | Rnull -> ()
  | Rattr r -> enc_result enc r (fun a -> enc_fattr enc a)
  | Rdirop r ->
      enc_result enc r (fun (fh, a) ->
          enc_fhandle enc fh;
          enc_fattr enc a)
  | Rreadlink r -> enc_result enc r (fun s -> Xdr.Enc.string enc s)
  | Rread r ->
      enc_result enc r (fun (a, data) ->
          enc_fattr enc a;
          (* The data copy out of the buffer cache into mbufs: counted. *)
          ignore ctr;
          Xdr.Enc.opaque enc data)
  | Rstat st -> enc_status enc st
  | Rreaddir r ->
      enc_result enc r (fun (entries, eof) ->
          List.iter
            (fun e ->
              Xdr.Enc.bool enc true;
              Xdr.Enc.int enc e.fileid;
              Xdr.Enc.string enc e.entry_name;
              Xdr.Enc.int enc e.entry_cookie)
            entries;
          Xdr.Enc.bool enc false;
          Xdr.Enc.bool enc eof)
  | Rstatfs r ->
      enc_result enc r (fun s ->
          Xdr.Enc.int enc s.tsize;
          Xdr.Enc.int enc s.bsize;
          Xdr.Enc.int enc s.blocks_total;
          Xdr.Enc.int enc s.blocks_free;
          Xdr.Enc.int enc s.blocks_avail)
  | Rreaddirlook r ->
      enc_result enc r (fun (ents, eof) ->
          List.iter
            (fun le ->
              Xdr.Enc.bool enc true;
              Xdr.Enc.int enc le.le_entry.fileid;
              Xdr.Enc.string enc le.le_entry.entry_name;
              Xdr.Enc.int enc le.le_entry.entry_cookie;
              enc_fhandle enc le.le_file;
              enc_fattr enc le.le_attr)
            ents;
          Xdr.Enc.bool enc false;
          Xdr.Enc.bool enc eof)
  | Rlease r ->
      enc_result enc r (fun granted ->
          match granted with
          | Some ok ->
              Xdr.Enc.bool enc true;
              Xdr.Enc.int enc ok.granted_duration;
              enc_fattr enc ok.lease_attr
          | None -> Xdr.Enc.bool enc false)
  | Rwrite3 r ->
      enc_result enc r (fun ok ->
          enc_fattr enc ok.w3_attr;
          Xdr.Enc.int enc ok.w3_count;
          Xdr.Enc.enum enc (int_of_stable_how ok.w3_committed);
          Xdr.Enc.int enc ok.w3_verf)
  | Rcommit r ->
      enc_result enc r (fun ok ->
          enc_fattr enc ok.cmo_attr;
          Xdr.Enc.int enc ok.cmo_verf)

let dec_entries dec dec_one =
  let rec go acc =
    if Xdr.Dec.bool dec then go (dec_one () :: acc) else List.rev acc
  in
  let entries = go [] in
  let eof = Xdr.Dec.bool dec in
  (entries, eof)

let decode_reply ~proc dec =
  match proc with
  | 0 -> Rnull
  | 1 | 2 | 8 -> Rattr (dec_result dec (fun () -> dec_fattr dec))
  | 4 | 9 | 14 ->
      Rdirop
        (dec_result dec (fun () ->
             let fh = dec_fhandle dec in
             (fh, dec_fattr dec)))
  | 5 -> Rreadlink (dec_result dec (fun () -> Xdr.Dec.string dec ~max:max_path))
  | 6 ->
      Rread
        (dec_result dec (fun () ->
             let a = dec_fattr dec in
             (* v3 mounts read in 32K-class transfers over the same
                READ proc, so replies carry up to [max_data_v3]. *)
             (a, Xdr.Dec.opaque dec ~max:max_data_v3)))
  | 10 | 11 | 12 | 13 | 15 -> Rstat (stat_of_int (Xdr.Dec.enum dec))
  | 16 ->
      Rreaddir
        (dec_result dec (fun () ->
             dec_entries dec (fun () ->
                 let fileid = Xdr.Dec.int dec in
                 let entry_name = Xdr.Dec.string dec ~max:max_name in
                 let entry_cookie = Xdr.Dec.int dec in
                 { fileid; entry_name; entry_cookie })))
  | 17 ->
      Rstatfs
        (dec_result dec (fun () ->
             let tsize = Xdr.Dec.int dec in
             let bsize = Xdr.Dec.int dec in
             let blocks_total = Xdr.Dec.int dec in
             let blocks_free = Xdr.Dec.int dec in
             let blocks_avail = Xdr.Dec.int dec in
             { tsize; bsize; blocks_total; blocks_free; blocks_avail }))
  | 18 ->
      Rreaddirlook
        (dec_result dec (fun () ->
             dec_entries dec (fun () ->
                 let fileid = Xdr.Dec.int dec in
                 let entry_name = Xdr.Dec.string dec ~max:max_name in
                 let entry_cookie = Xdr.Dec.int dec in
                 let le_file = dec_fhandle dec in
                 let le_attr = dec_fattr dec in
                 { le_entry = { fileid; entry_name; entry_cookie }; le_file; le_attr })))
  | 19 ->
      Rlease
        (dec_result dec (fun () ->
             if Xdr.Dec.bool dec then
               let granted_duration = Xdr.Dec.int dec in
               Some { granted_duration; lease_attr = dec_fattr dec }
             else None))
  | 20 ->
      Rwrite3
        (dec_result dec (fun () ->
             let w3_attr = dec_fattr dec in
             let w3_count = Xdr.Dec.int dec in
             let w3_committed = stable_how_of_int (Xdr.Dec.enum dec) in
             let w3_verf = Xdr.Dec.int dec in
             { w3_attr; w3_count; w3_committed; w3_verf }))
  | 21 ->
      Rcommit
        (dec_result dec (fun () ->
             let cmo_attr = dec_fattr dec in
             let cmo_verf = Xdr.Dec.int dec in
             { cmo_attr; cmo_verf }))
  | n -> raise (Xdr.Decode_error (Printf.sprintf "unknown NFS procedure %d" n))
