module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu
module Mbuf = Renofs_mbuf.Mbuf
module Node = Renofs_net.Node
module Packet = Renofs_net.Packet
module Trace = Renofs_trace.Trace

type datagram = { src : int; src_port : int; payload : Mbuf.t; arrived_at : float }

type socket = {
  stack : stack;
  port : int;
  recv_buffer : int;
  queue : datagram Queue.t;
  mutable queued_bytes : int;
  mutable waiters : (unit -> unit) list;
  mutable drops : int;
  mutable closed : bool;
}

and stack = {
  node : Node.t;
  sock_cost : float;
  checksum : bool;
  sockets : (int, socket) Hashtbl.t;
  mutable next_ephemeral : int;
  mutable checksum_drops : int;
}

(* 0.2 ms of socket-layer work on a 0.9 MIPS machine = 180 instructions'
   worth; scale with CPU speed via instruction count. *)
let default_sock_instructions = 180.0

let install ?sock_cost ?(checksum = true) node =
  let cost =
    match sock_cost with
    | Some c -> c
    | None -> Cpu.seconds_of_instructions (Node.cpu node) default_sock_instructions
  in
  let stack =
    {
      node;
      sock_cost = cost;
      checksum;
      sockets = Hashtbl.create 16;
      next_ephemeral = 40000;
      checksum_drops = 0;
    }
  in
  (* The receive handler blocks only for the socket-layer input cost,
     so it is written over [Cpu.consume_k] and registered without a
     fiber: everything past the CPU charge is queue and hashtable
     work. *)
  Node.set_proto_handler node ~needs_fiber:false Packet.Udp
    (fun (dg : Node.datagram) ->
      Cpu.consume_k (Node.cpu node) stack.sock_cost @@ fun () ->
      (* Verify the sender's checksum metadata before demultiplexing.
         [sum = None] (an unchecksummed sender, e.g. background cross
         traffic) is accepted — exactly UDP's optional-checksum rule.
         The length check matters on its own: a truncated final fragment
         reassembles into a silently shorter datagram whose bytes all
         checksum fine. *)
      let sum_ok =
        (not stack.checksum)
        ||
        match dg.Node.sum with
        | None -> true
        | Some (len, sum) ->
            Mbuf.length dg.Node.payload = len
            && Mbuf.checksum dg.Node.payload = sum
      in
      if not sum_ok then begin
        stack.checksum_drops <- stack.checksum_drops + 1;
        match Node.trace node with
        | Some tr ->
            Trace.record tr
              ~time:(Renofs_engine.Sim.now (Node.sim node))
              ~node:(Node.id node)
              (Trace.Pkt_drop
                 {
                   link = Printf.sprintf "udp:%d" dg.Node.dst_port;
                   bytes = Mbuf.length dg.Node.payload;
                   reason = Trace.Bad_checksum;
                 })
        | None -> ()
      end
      else
      match Hashtbl.find_opt stack.sockets dg.Node.dst_port with
      | None -> () (* port unreachable; silently dropped *)
      | Some sock ->
          let size = Mbuf.length dg.Node.payload in
          if sock.queued_bytes + size > sock.recv_buffer then begin
            sock.drops <- sock.drops + 1;
            match Node.trace node with
            | Some tr ->
                Trace.record tr
                  ~time:(Renofs_engine.Sim.now (Node.sim node))
                  ~node:(Node.id node)
                  (Trace.Pkt_drop
                     {
                       link = Printf.sprintf "udp:%d" sock.port;
                       bytes = size;
                       reason = Trace.Sock_overflow;
                     })
            | None -> ()
          end
          else begin
            Queue.add
              {
                src = dg.Node.src;
                src_port = dg.Node.src_port;
                payload = dg.Node.payload;
                arrived_at = Renofs_engine.Sim.now (Node.sim node);
              }
              sock.queue;
            sock.queued_bytes <- sock.queued_bytes + size;
            match sock.waiters with
            | [] -> ()
            | resume :: rest ->
                sock.waiters <- rest;
                Renofs_engine.Sim.after (Node.sim node) 0.0 resume
          end);
  stack

let node t = t.node

let default_recv_buffer = 34816

let bind ?(recv_buffer = default_recv_buffer) stack ~port =
  if Hashtbl.mem stack.sockets port then
    invalid_arg (Printf.sprintf "Udp.bind: port %d in use" port);
  let sock =
    {
      stack;
      port;
      recv_buffer;
      queue = Queue.create ();
      queued_bytes = 0;
      waiters = [];
      drops = 0;
      closed = false;
    }
  in
  Hashtbl.replace stack.sockets port sock;
  sock

let bind_ephemeral ?recv_buffer stack =
  let rec pick () =
    let p = stack.next_ephemeral in
    stack.next_ephemeral <- stack.next_ephemeral + 1;
    if Hashtbl.mem stack.sockets p then pick () else p
  in
  bind ?recv_buffer stack ~port:(pick ())

let port sock = sock.port

let sendto sock ~dst ~dst_port payload =
  if sock.closed then invalid_arg "Udp.sendto: socket closed";
  Cpu.consume (Node.cpu sock.stack.node) sock.stack.sock_cost;
  (* The CPU time of checksumming is already charged by the node's
     [Nic.checksum_cost] on both paths; this only attaches the virtual
     header fields the receiver verifies. *)
  let sum =
    if sock.stack.checksum then
      Some (Mbuf.length payload, Mbuf.checksum payload)
    else None
  in
  Node.send_datagram sock.stack.node ?sum ~proto:Packet.Udp ~dst
    ~src_port:sock.port ~dst_port payload

let try_recv sock =
  match Queue.take_opt sock.queue with
  | None -> None
  | Some dg ->
      sock.queued_bytes <- sock.queued_bytes - Mbuf.length dg.payload;
      Some dg

let rec recv sock =
  match try_recv sock with
  | Some dg -> dg
  | None ->
      Proc.suspend (fun resume -> sock.waiters <- sock.waiters @ [ resume ]);
      recv sock

let pending sock = Queue.length sock.queue
let drops sock = sock.drops
let checksum_enabled stack = stack.checksum
let checksum_drops stack = stack.checksum_drops

let close sock =
  sock.closed <- true;
  Hashtbl.remove sock.stack.sockets sock.port
