(** Client-side file attribute cache.

    Attributes expire a few seconds after they were last refreshed from
    the server (five in the Reno implementation), which bounds how stale
    a client's view of another client's changes can be — the consistency
    level Section 1 of the paper describes.  Every RPC reply carrying
    attributes refreshes the cache ("piggyback" updates), which is what
    keeps the Getattr RPC count low. *)

type t

val create : Renofs_engine.Sim.t -> ?timeout:float -> unit -> t
(** [timeout] defaults to 5 s. *)

val get : t -> Nfs_proto.fhandle -> Nfs_proto.fattr option
(** Fresh attributes only; counts a hit or a miss. *)

val peek : t -> Nfs_proto.fhandle -> Nfs_proto.fattr option
(** Like {!get} but ignores freshness and the counters; used when any
    cached value is acceptable (e.g. a file size hint). *)

val update : t -> Nfs_proto.fhandle -> Nfs_proto.fattr -> unit
val invalidate : t -> Nfs_proto.fhandle -> unit
val purge : t -> unit
val hits : t -> int
val misses : t -> int
