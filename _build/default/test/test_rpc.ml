open Renofs_rpc
module Mbuf = Renofs_mbuf.Mbuf
module Xdr = Renofs_xdr.Xdr

let sample_cred =
  Rpc_msg.Auth_unix { stamp = 17; machine = "client1"; uid = 100; gid = 20 }

let sample_call proc =
  { Rpc_msg.xid = 0x1234l; prog = 100003; vers = 2; proc; cred = sample_cred }

let test_call_roundtrip () =
  let enc = Rpc_msg.encode_call (sample_call 6) in
  Xdr.Enc.int enc 8192;
  (* pretend argument *)
  let hdr, dec = Rpc_msg.decode_call (Xdr.Enc.chain enc) in
  Alcotest.(check int32) "xid" 0x1234l hdr.Rpc_msg.xid;
  Alcotest.(check int) "prog" 100003 hdr.Rpc_msg.prog;
  Alcotest.(check int) "vers" 2 hdr.Rpc_msg.vers;
  Alcotest.(check int) "proc" 6 hdr.Rpc_msg.proc;
  (match hdr.Rpc_msg.cred with
  | Rpc_msg.Auth_unix { machine; uid; gid; _ } ->
      Alcotest.(check string) "machine" "client1" machine;
      Alcotest.(check int) "uid" 100 uid;
      Alcotest.(check int) "gid" 20 gid
  | Rpc_msg.Auth_null -> Alcotest.fail "expected AUTH_UNIX");
  Alcotest.(check int) "args follow" 8192 (Xdr.Dec.int dec)

let test_call_auth_null () =
  let hdr = { (sample_call 1) with Rpc_msg.cred = Rpc_msg.Auth_null } in
  let enc = Rpc_msg.encode_call hdr in
  let got, _ = Rpc_msg.decode_call (Xdr.Enc.chain enc) in
  Alcotest.(check bool) "auth null" true (got.Rpc_msg.cred = Rpc_msg.Auth_null)

let test_reply_success () =
  let enc = Rpc_msg.encode_reply ~xid:7l (Rpc_msg.Accepted Rpc_msg.Success) in
  Xdr.Enc.int enc 0;
  (* NFS_OK status as result *)
  let xid, status, dec = Rpc_msg.decode_reply (Xdr.Enc.chain enc) in
  Alcotest.(check int32) "xid" 7l xid;
  (match status with
  | Rpc_msg.Accepted Rpc_msg.Success -> ()
  | _ -> Alcotest.fail "expected success");
  Alcotest.(check int) "results follow" 0 (Xdr.Dec.int dec)

let test_reply_errors () =
  let cases =
    [
      Rpc_msg.Accepted Rpc_msg.Prog_unavail;
      Rpc_msg.Accepted (Rpc_msg.Prog_mismatch { low = 2; high = 2 });
      Rpc_msg.Accepted Rpc_msg.Proc_unavail;
      Rpc_msg.Accepted Rpc_msg.Garbage_args;
      Rpc_msg.Accepted Rpc_msg.System_err;
      Rpc_msg.Denied Rpc_msg.Rpc_mismatch;
      Rpc_msg.Denied Rpc_msg.Auth_error;
    ]
  in
  List.iter
    (fun status ->
      let enc = Rpc_msg.encode_reply ~xid:9l status in
      let _, got, _ = Rpc_msg.decode_reply (Xdr.Enc.chain enc) in
      Alcotest.(check bool) "status roundtrip" true (got = status))
    cases

let test_call_is_not_reply () =
  let enc = Rpc_msg.encode_call (sample_call 1) in
  Alcotest.check_raises "call rejected as reply" (Rpc_msg.Bad_message "not a reply")
    (fun () -> ignore (Rpc_msg.decode_reply (Xdr.Enc.chain enc)))

let test_peek_xid () =
  let enc = Rpc_msg.encode_call (sample_call 4) in
  Alcotest.(check (option int32)) "peek" (Some 0x1234l)
    (Rpc_msg.peek_xid (Xdr.Enc.chain enc));
  Alcotest.(check (option int32)) "short chain" None (Rpc_msg.peek_xid (Mbuf.empty ()))

let test_garbage_rejected () =
  let chain = Mbuf.of_string "this is not an rpc message at all.." in
  match Rpc_msg.decode_call chain with
  | exception (Rpc_msg.Bad_message _ | Xdr.Decode_error _) -> ()
  | _ -> Alcotest.fail "garbage accepted"

(* Record marking *)

let test_frame_shape () =
  let body = Mbuf.of_string "abcd" in
  let framed = Record_mark.frame body in
  Alcotest.(check int) "marker + body" 8 (Mbuf.length framed);
  let b = Mbuf.to_bytes framed in
  let word = Int32.to_int (Bytes.get_int32_be b 0) land 0xFFFFFFFF in
  Alcotest.(check bool) "last flag" true (word land 0x80000000 <> 0);
  Alcotest.(check int) "length" 4 (word land 0x7FFFFFFF)

let test_reader_single_record () =
  let r = Record_mark.Reader.create () in
  Record_mark.Reader.push r (Record_mark.frame (Mbuf.of_string "hello"));
  (match Record_mark.Reader.pop r with
  | Some rec_ -> Alcotest.(check string) "record" "hello" (Bytes.to_string (Mbuf.to_bytes rec_))
  | None -> Alcotest.fail "no record");
  Alcotest.(check bool) "drained" true (Record_mark.Reader.pop r = None)

let test_reader_partial_then_complete () =
  let r = Record_mark.Reader.create () in
  let framed = Record_mark.frame (Mbuf.of_string "0123456789") in
  let first, second = Mbuf.split framed 6 in
  Record_mark.Reader.push r first;
  Alcotest.(check bool) "incomplete" true (Record_mark.Reader.pop r = None);
  Record_mark.Reader.push r second;
  match Record_mark.Reader.pop r with
  | Some rec_ ->
      Alcotest.(check string) "assembled" "0123456789"
        (Bytes.to_string (Mbuf.to_bytes rec_))
  | None -> Alcotest.fail "no record after completion"

let test_reader_back_to_back () =
  let r = Record_mark.Reader.create () in
  let joined = Record_mark.frame (Mbuf.of_string "first") in
  Mbuf.append_chain joined (Record_mark.frame (Mbuf.of_string "second!"));
  Record_mark.Reader.push r joined;
  let pop_str () =
    match Record_mark.Reader.pop r with
    | Some c -> Bytes.to_string (Mbuf.to_bytes c)
    | None -> Alcotest.fail "expected record"
  in
  Alcotest.(check string) "first" "first" (pop_str ());
  Alcotest.(check string) "second" "second!" (pop_str ());
  Alcotest.(check bool) "no extra" true (Record_mark.Reader.pop r = None)

let prop_reader_chunking =
  QCheck.Test.make ~name:"record reader handles arbitrary chunking" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 8) (string_of_size Gen.(int_range 1 2000)))
        (list_of_size Gen.(int_range 1 30) (int_range 1 700)))
    (fun (messages, chunk_sizes) ->
      (* Frame all messages into one stream, then feed it in odd chunks. *)
      let stream = Mbuf.empty () in
      List.iter
        (fun m -> Mbuf.append_chain stream (Record_mark.frame (Mbuf.of_string m)))
        messages;
      let reader = Record_mark.Reader.create () in
      let received = ref [] in
      let drain () =
        let rec go () =
          match Record_mark.Reader.pop reader with
          | Some r ->
              received := Bytes.to_string (Mbuf.to_bytes r) :: !received;
              go ()
          | None -> ()
        in
        go ()
      in
      let rec feed stream sizes =
        if Mbuf.length stream > 0 then begin
          let n, rest_sizes =
            match sizes with
            | s :: rest -> (min s (Mbuf.length stream), rest)
            | [] -> (Mbuf.length stream, [])
          in
          let chunk, rest = Mbuf.split stream n in
          Record_mark.Reader.push reader chunk;
          drain ();
          feed rest rest_sizes
        end
      in
      feed stream chunk_sizes;
      List.rev !received = messages)

let prop_rpc_call_roundtrip =
  QCheck.Test.make ~name:"rpc call header roundtrip" ~count:200
    QCheck.(quad (map Int32.of_int int) (int_bound 20) (int_bound 1000) (string_of_size (Gen.int_bound 30)))
    (fun (xid, proc, uid, machine) ->
      let hdr =
        {
          Rpc_msg.xid;
          prog = 100003;
          vers = 2;
          proc;
          cred = Rpc_msg.Auth_unix { stamp = 1; machine; uid; gid = uid + 1 };
        }
      in
      let enc = Rpc_msg.encode_call hdr in
      let got, dec = Rpc_msg.decode_call (Xdr.Enc.chain enc) in
      got = hdr && Xdr.Dec.remaining dec = 0)

let () =
  Alcotest.run "rpc"
    [
      ( "messages",
        [
          Alcotest.test_case "call roundtrip" `Quick test_call_roundtrip;
          Alcotest.test_case "auth null" `Quick test_call_auth_null;
          Alcotest.test_case "reply success" `Quick test_reply_success;
          Alcotest.test_case "reply errors" `Quick test_reply_errors;
          Alcotest.test_case "call is not reply" `Quick test_call_is_not_reply;
          Alcotest.test_case "peek xid" `Quick test_peek_xid;
          Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
        ] );
      ( "record-marking",
        [
          Alcotest.test_case "frame shape" `Quick test_frame_shape;
          Alcotest.test_case "single record" `Quick test_reader_single_record;
          Alcotest.test_case "partial then complete" `Quick test_reader_partial_then_complete;
          Alcotest.test_case "back to back" `Quick test_reader_back_to_back;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_reader_chunking; prop_rpc_call_roundtrip ] );
    ]
