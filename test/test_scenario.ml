(* Scenario suite tests: the SLO evaluator on synthetic trace streams,
   the renofs-scenario/1 decoder, the Run_spec layering, and the
   crash-at-peak scenario judged both ways (reboot = PASS, no reboot =
   recovery breach). *)

module Scenario = Renofs_scenario.Scenario
module Slo = Scenario.Slo
module Trace = Renofs_trace.Trace
module Fault = Renofs_fault.Fault
module Json = Renofs_json.Json
module E = Renofs_workload.Experiments
module R = Renofs_workload.Run_spec

let rec_ ?(node = 0) time ev = { Trace.time; node; ev }

(* One completed RPC: send at [t], reply [rtt] later. *)
let rpc ?(node = 0) ~xid ~proc t rtt =
  [
    rec_ ~node t (Trace.Rpc_send { xid = Int32.of_int xid; proc });
    rec_ ~node (t +. rtt)
      (Trace.Rpc_reply { xid = Int32.of_int xid; proc; rtt });
  ]

let lookup = 4
let read = 6

(* ------------------------------------------------------------------ *)
(* p99                                                                 *)
(* ------------------------------------------------------------------ *)

let test_p99_empty_and_nan () =
  Alcotest.(check (float 0.0)) "empty is 0" 0.0 (Slo.p99 []);
  Alcotest.(check (float 0.0)) "all-NaN is 0" 0.0 (Slo.p99 [ Float.nan ]);
  Alcotest.(check (float 0.0))
    "NaN samples dropped" 7.0
    (Slo.p99 [ Float.nan; 7.0; Float.nan ])

let test_p99_nearest_rank () =
  let hundred = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.0)) "p99 of 1..100" 99.0 (Slo.p99 hundred);
  Alcotest.(check (float 0.0)) "single sample" 42.0 (Slo.p99 [ 42.0 ]);
  Alcotest.(check (float 0.0))
    "order does not matter" 99.0
    (Slo.p99 (List.rev hundred))

(* ------------------------------------------------------------------ *)
(* availability                                                        *)
(* ------------------------------------------------------------------ *)

let test_availability_no_traffic () =
  Alcotest.(check (float 0.0)) "no records" 1.0 (Slo.availability ~window:1.0 []);
  Alcotest.(check (float 0.0))
    "non-RPC records only" 1.0
    (Slo.availability ~window:1.0 [ rec_ 3.0 Trace.Srv_crash ])

let test_availability_fractions () =
  (* Window 0: send + reply.  Window 1: send, never answered.
     Window 2: send + reply.  2 of 3 judged windows available. *)
  let records =
    rpc ~xid:1 ~proc:lookup 0.1 0.1
    @ [ rec_ 1.1 (Trace.Rpc_send { xid = 2l; proc = lookup }) ]
    @ rpc ~xid:3 ~proc:lookup 2.1 0.2
  in
  Alcotest.(check (float 1e-9))
    "2/3 windows" (2.0 /. 3.0)
    (Slo.availability ~window:1.0 records)

let test_availability_idle_window_skipped () =
  (* Nothing at all happens in window 1: it is not judged. *)
  let records = rpc ~xid:1 ~proc:lookup 0.1 0.1 @ rpc ~xid:2 ~proc:lookup 2.1 0.1 in
  Alcotest.(check (float 0.0))
    "idle window not judged" 1.0
    (Slo.availability ~window:1.0 records)

let test_availability_window_edges () =
  (* Windows anchor at the earliest event (t=5.0).  A send exactly on
     the boundary t0+window lands in the next window; its reply there
     keeps that window available while window 0's send stays
     unanswered. *)
  let records =
    [ rec_ 5.0 (Trace.Rpc_send { xid = 1l; proc = lookup }) ]
    @ rpc ~xid:2 ~proc:lookup 6.0 0.2
  in
  Alcotest.(check (float 1e-9))
    "boundary send opens the next window" 0.5
    (Slo.availability ~window:1.0 records);
  (* With a window wide enough to cover both, one judged window. *)
  Alcotest.(check (float 0.0))
    "one wide window" 1.0
    (Slo.availability ~window:10.0 records)

let test_availability_retransmit_judges () =
  (* A window containing only retransmissions of a dead RPC is judged
     (and unavailable) — that is the outage signal. *)
  let records =
    rpc ~xid:1 ~proc:lookup 0.1 0.1
    @ [
        rec_ 1.2
          (Trace.Rpc_retransmit { xid = 2l; proc = lookup; retry = 1; rto = 1.0 });
      ]
  in
  Alcotest.(check (float 0.0))
    "retransmit-only window unavailable" 0.5
    (Slo.availability ~window:1.0 records)

(* ------------------------------------------------------------------ *)
(* evaluate                                                            *)
(* ------------------------------------------------------------------ *)

let no_read_back ~node:_ ~file:_ ~off:_ ~len:_ = None

let eval ?(server_nodes = []) slo records =
  Slo.evaluate slo ~server_nodes ~read_back:no_read_back records

let breach_names (o : Slo.outcome) =
  List.map (fun b -> b.Slo.b_slo) o.Slo.o_breaches

let test_evaluate_pass_vs_breach () =
  let records =
    List.concat (List.init 10 (fun i -> rpc ~xid:i ~proc:lookup (float_of_int i) 0.05))
  in
  let slo = { Scenario.default_slo with slo_p99_ms = [ ("*", 100.0) ] } in
  Alcotest.(check (list string)) "under ceiling" [] (breach_names (eval slo records));
  let slo = { Scenario.default_slo with slo_p99_ms = [ ("*", 40.0) ] } in
  Alcotest.(check (list string))
    "over ceiling" [ "p99-all" ]
    (breach_names (eval slo records))

let test_evaluate_exactly_at_threshold_passes () =
  (* One RPC of exactly 100 ms; the ceiling is strict. *)
  let records = rpc ~xid:1 ~proc:lookup 0.0 0.1 in
  let slo = { Scenario.default_slo with slo_p99_ms = [ ("*", 100.0) ] } in
  let o = eval slo records in
  Alcotest.(check (float 1e-6)) "measured 100ms" 100.0 o.Slo.o_p99_ms;
  Alcotest.(check (list string)) "at threshold passes" [] (breach_names o);
  let slo = { Scenario.default_slo with slo_p99_ms = [ ("*", 99.999) ] } in
  Alcotest.(check (list string))
    "hair under breaches" [ "p99-all" ]
    (breach_names (eval slo records))

let test_evaluate_per_class_and_vacuous () =
  let records =
    rpc ~xid:1 ~proc:lookup 0.0 0.5 @ rpc ~xid:2 ~proc:read 1.0 0.01
  in
  let slo =
    {
      Scenario.default_slo with
      (* lookup is slow, read is fast, write has no samples at all:
         only the lookup ceiling may breach. *)
      slo_p99_ms = [ ("lookup", 100.0); ("read", 100.0); ("write", 0.001) ];
    }
  in
  Alcotest.(check (list string))
    "only the slow class, empty class vacuous" [ "p99-lookup" ]
    (breach_names (eval slo records))

let test_evaluate_availability_breach () =
  let records =
    rpc ~xid:1 ~proc:lookup 0.1 0.1
    @ [ rec_ 1.1 (Trace.Rpc_send { xid = 2l; proc = lookup }) ]
  in
  let slo = { Scenario.default_slo with slo_availability = 0.75 } in
  Alcotest.(check (list string))
    "1/2 windows < 75%" [ "availability" ]
    (breach_names (eval slo records));
  let slo = { Scenario.default_slo with slo_availability = 0.5 } in
  Alcotest.(check (list string))
    "exactly at the floor passes" []
    (breach_names (eval slo records))

let test_evaluate_recovery_per_server () =
  (* Server node 2 crashes at t=10 and first serves again at t=14;
     server node 3 serves at t=10.5 throughout.  Without per-node
     partitioning the gap would wrongly be 0.5 s. *)
  let records =
    [
      rec_ ~node:2 10.0 Trace.Srv_crash;
      rec_ ~node:3 10.5
        (Trace.Srv_service { xid = 7l; proc = lookup; service = 0.001 });
      rec_ ~node:2 14.0
        (Trace.Srv_service { xid = 8l; proc = lookup; service = 0.001 });
    ]
  in
  let slo = { Scenario.default_slo with slo_max_recovery_s = Some 2.0 } in
  let o = eval ~server_nodes:[ 2; 3 ] slo records in
  Alcotest.(check (float 1e-9)) "worst gap is 4s" 4.0 o.Slo.o_recovery;
  Alcotest.(check (list string)) "over ceiling" [ "recovery" ] (breach_names o);
  let slo = { Scenario.default_slo with slo_max_recovery_s = Some 4.0 } in
  Alcotest.(check (list string))
    "exactly at ceiling passes" []
    (breach_names (eval ~server_nodes:[ 2; 3 ] slo records));
  let slo = { Scenario.default_slo with slo_max_recovery_s = None } in
  Alcotest.(check (list string))
    "no ceiling, no breach" []
    (breach_names (eval ~server_nodes:[ 2; 3 ] slo records))

let test_evaluate_integrity () =
  let records = [ rec_ 1.0 (Trace.Wl_error { op = "read"; soft = false }) ] in
  let o = eval Scenario.default_slo records in
  Alcotest.(check (list string))
    "hard-mount error is an integrity breach"
    [ "integrity:hard-mount-errors" ] (breach_names o);
  let off = { Scenario.default_slo with slo_integrity = false } in
  Alcotest.(check (list string))
    "integrity off" []
    (breach_names (eval off records))

let test_evaluate_empty_records () =
  let slo =
    {
      Scenario.default_slo with
      slo_p99_ms = [ ("*", 1.0) ];
      slo_availability = 0.999;
      slo_max_recovery_s = Some 0.1;
    }
  in
  let o = eval slo [] in
  Alcotest.(check (list string)) "empty run passes vacuously" [] (breach_names o);
  Alcotest.(check (float 0.0)) "p99 0" 0.0 o.Slo.o_p99_ms;
  Alcotest.(check (float 0.0)) "availability 1" 1.0 o.Slo.o_availability

(* ------------------------------------------------------------------ *)
(* renofs-scenario/1 decoding                                          *)
(* ------------------------------------------------------------------ *)

let minimal =
  {|{ "schema": "renofs-scenario/1", "name": "mini",
      "load": [ { "duration": 5.0, "rate": 2.0 } ] }|}

let test_parse_minimal () =
  match Scenario.parse minimal with
  | Error msg -> Alcotest.failf "minimal scenario rejected: %s" msg
  | Ok sc ->
      Alcotest.(check string) "name" "mini" sc.Scenario.sc_name;
      Alcotest.(check int) "default world servers" 2
        sc.Scenario.sc_world.Scenario.w_servers;
      Alcotest.(check int) "one segment" 1 (List.length sc.Scenario.sc_load);
      Alcotest.(check bool) "no faults" true (sc.Scenario.sc_faults = []);
      Alcotest.(check bool) "integrity defaults on" true
        sc.Scenario.sc_slo.Scenario.slo_integrity

let test_parse_full () =
  let doc =
    {|{ "schema": "renofs-scenario/1", "name": "day", "description": "d",
        "world": { "servers": 3, "clients": 4, "tier": "fat-tree:2x3",
                   "wan_fraction": 0.25, "seed": 9 },
        "load": [ { "label": "a", "duration": 5.0, "rate": 2.0,
                    "rate_end": 8.0, "mix": "bulk" } ],
        "faults": [ { "kind": "server_crash", "at": 2.0, "downtime": 1.0,
                      "server": "server1" } ],
        "slo": { "p99_ms": { "*": 100.0, "read": 50.0 },
                 "availability": 0.9, "window": 2.0,
                 "max_recovery_s": 5.0, "integrity": false },
        "run": { "jobs": 3, "report": true } }|}
  in
  match Scenario.parse doc with
  | Error msg -> Alcotest.failf "full scenario rejected: %s" msg
  | Ok sc ->
      Alcotest.(check int) "servers" 3 sc.Scenario.sc_world.Scenario.w_servers;
      Alcotest.(check bool) "tier" true
        (sc.Scenario.sc_world.Scenario.w_tier
        = Renofs_net.Topology.Fat_tree { spines = 2; leaves = 3 });
      Alcotest.(check int) "seed" 9 sc.Scenario.sc_world.Scenario.w_seed;
      (match sc.Scenario.sc_load with
      | [ seg ] ->
          Alcotest.(check string) "label" "a" seg.Renofs_workload.Nhfsstone.sg_label;
          Alcotest.(check bool) "ramp" true
            (seg.Renofs_workload.Nhfsstone.sg_rate_end = Some 8.0)
      | _ -> Alcotest.fail "expected one segment");
      (match sc.Scenario.sc_faults with
      | [ Fault.Server_crash { at; downtime; server } ] ->
          Alcotest.(check (float 0.0)) "at" 2.0 at;
          Alcotest.(check (float 0.0)) "downtime" 1.0 downtime;
          Alcotest.(check string) "server" "server1" server
      | _ -> Alcotest.fail "expected one server_crash");
      Alcotest.(check (float 0.0)) "window" 2.0
        sc.Scenario.sc_slo.Scenario.slo_window;
      Alcotest.(check bool) "integrity off" false
        sc.Scenario.sc_slo.Scenario.slo_integrity;
      Alcotest.(check bool) "run jobs" true (sc.Scenario.sc_run.R.rs_jobs = Some 3);
      Alcotest.(check bool) "run report" true sc.Scenario.sc_run.R.rs_report

let expect_error ~needle doc =
  match Scenario.parse doc with
  | Ok _ -> Alcotest.failf "accepted bad scenario (wanted error %S)" needle
  | Error msg ->
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      if not (contains needle msg) then
        Alcotest.failf "error %S does not mention %S" msg needle

let test_parse_rejects () =
  expect_error ~needle:"unknown field"
    {|{ "schema": "renofs-scenario/1", "name": "x", "laod": [],
        "load": [ { "duration": 1.0, "rate": 1.0 } ] }|};
  expect_error ~needle:"unknown field"
    {|{ "schema": "renofs-scenario/1", "name": "x",
        "load": [ { "duration": 1.0, "rate": 1.0, "mx": "bulk" } ] }|};
  expect_error ~needle:"unknown mix"
    {|{ "schema": "renofs-scenario/1", "name": "x",
        "load": [ { "duration": 1.0, "rate": 1.0, "mix": "nope" } ] }|};
  expect_error ~needle:"unsupported schema"
    {|{ "schema": "renofs-bench/1", "name": "x",
        "load": [ { "duration": 1.0, "rate": 1.0 } ] }|};
  expect_error ~needle:"at least one segment"
    {|{ "schema": "renofs-scenario/1", "name": "x", "load": [] }|};
  expect_error ~needle:"bad tier"
    {|{ "schema": "renofs-scenario/1", "name": "x",
        "world": { "tier": "ring:3" },
        "load": [ { "duration": 1.0, "rate": 1.0 } ] }|};
  expect_error ~needle:"duration"
    {|{ "schema": "renofs-scenario/1", "name": "x",
        "load": [ { "rate": 1.0 } ] }|}

let test_builtins_resolve () =
  Alcotest.(check int) "five builtins" 5 (List.length Scenario.builtins);
  List.iter
    (fun name ->
      match Scenario.resolve name with
      | Ok sc -> Alcotest.(check string) "resolves to itself" name sc.Scenario.sc_name
      | Error msg -> Alcotest.failf "builtin %s: %s" name msg)
    Scenario.builtin_names;
  match Scenario.resolve "no-such-scenario" with
  | Ok _ -> Alcotest.fail "resolved a nonexistent scenario"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Run_spec layering                                                   *)
(* ------------------------------------------------------------------ *)

let test_run_spec_override () =
  let base =
    { R.empty with R.rs_jobs = Some 2; rs_seed = Some 7; rs_report = true }
  in
  let cli = { R.empty with R.rs_jobs = Some 5; rs_json = Some "x.json" } in
  let merged = R.override ~base cli in
  Alcotest.(check bool) "cli wins" true (merged.R.rs_jobs = Some 5);
  Alcotest.(check bool) "base fills the gap" true (merged.R.rs_seed = Some 7);
  Alcotest.(check bool) "new field kept" true (merged.R.rs_json = Some "x.json");
  Alcotest.(check bool) "report ors" true merged.R.rs_report;
  Alcotest.(check bool) "unset stays unset" true (merged.R.rs_scale = None)

let test_run_spec_of_json () =
  let fields ctx doc =
    match Json.parse_exn doc with
    | Json.Obj f -> R.of_json ~ctx f
    | _ -> Alcotest.fail "not an object"
  in
  let rs = fields "run" {|{ "scale": "full", "jobs": 4, "report": true }|} in
  Alcotest.(check bool) "scale" true (rs.R.rs_scale = Some E.Full);
  Alcotest.(check bool) "jobs" true (rs.R.rs_jobs = Some 4);
  Alcotest.(check bool) "report" true rs.R.rs_report;
  (match fields "run" {|{ "jbos": 4 }|} with
  | exception Json.Bad msg ->
      Alcotest.(check bool) "names the field" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "unknown run field accepted")

(* ------------------------------------------------------------------ *)
(* crash-at-peak, judged both ways                                     *)
(* ------------------------------------------------------------------ *)

let run_verdict sc =
  let results = E.run_spec ~jobs:1 (Scenario.suite_spec [ sc ]) in
  match results.E.r_rows with
  | [ row ] -> (
      match List.rev row with
      | E.Text verdict :: _ -> (verdict, Scenario.failures results)
      | _ -> Alcotest.fail "verdict column is not text")
  | _ -> Alcotest.fail "expected one row"

let test_crash_at_peak_passes_with_reboot () =
  match Scenario.find_builtin "crash-at-peak" with
  | None -> Alcotest.fail "crash-at-peak builtin missing"
  | Some sc ->
      let verdict, fails = run_verdict sc in
      Alcotest.(check string) "reboot meets the SLOs" "PASS" verdict;
      Alcotest.(check (list string)) "no failures" [] fails

let test_crash_at_peak_fails_without_reboot () =
  match Scenario.find_builtin "crash-at-peak" with
  | None -> Alcotest.fail "crash-at-peak builtin missing"
  | Some sc ->
      let sc =
        {
          sc with
          Scenario.sc_name = "crash-noreboot";
          sc_faults =
            [
              Fault.Server_crash
                { at = 12.0; downtime = 9999.0; server = "server0" };
            ];
        }
      in
      let verdict, fails = run_verdict sc in
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "verdict is FAIL" true (contains "FAIL:" verdict);
      Alcotest.(check bool) "names the recovery SLO" true
        (contains "recovery" verdict);
      Alcotest.(check int) "one failure line" 1 (List.length fails);
      Alcotest.(check bool) "failure names the scenario" true
        (contains "crash-noreboot" (List.hd fails))

let () =
  Alcotest.run "scenario"
    [
      ( "p99",
        [
          Alcotest.test_case "empty and NaN" `Quick test_p99_empty_and_nan;
          Alcotest.test_case "nearest rank" `Quick test_p99_nearest_rank;
        ] );
      ( "availability",
        [
          Alcotest.test_case "no traffic" `Quick test_availability_no_traffic;
          Alcotest.test_case "fractions" `Quick test_availability_fractions;
          Alcotest.test_case "idle window skipped" `Quick
            test_availability_idle_window_skipped;
          Alcotest.test_case "window edges" `Quick test_availability_window_edges;
          Alcotest.test_case "retransmit judges" `Quick
            test_availability_retransmit_judges;
        ] );
      ( "evaluate",
        [
          Alcotest.test_case "pass vs breach" `Quick test_evaluate_pass_vs_breach;
          Alcotest.test_case "exactly at threshold" `Quick
            test_evaluate_exactly_at_threshold_passes;
          Alcotest.test_case "per class and vacuous" `Quick
            test_evaluate_per_class_and_vacuous;
          Alcotest.test_case "availability breach" `Quick
            test_evaluate_availability_breach;
          Alcotest.test_case "recovery per server" `Quick
            test_evaluate_recovery_per_server;
          Alcotest.test_case "integrity" `Quick test_evaluate_integrity;
          Alcotest.test_case "empty records" `Quick test_evaluate_empty_records;
        ] );
      ( "format",
        [
          Alcotest.test_case "minimal" `Quick test_parse_minimal;
          Alcotest.test_case "full" `Quick test_parse_full;
          Alcotest.test_case "rejects" `Quick test_parse_rejects;
          Alcotest.test_case "builtins resolve" `Quick test_builtins_resolve;
        ] );
      ( "run-spec",
        [
          Alcotest.test_case "override layering" `Quick test_run_spec_override;
          Alcotest.test_case "of_json" `Quick test_run_spec_of_json;
        ] );
      ( "crash-at-peak",
        [
          Alcotest.test_case "passes with reboot" `Quick
            test_crash_at_peak_passes_with_reboot;
          Alcotest.test_case "fails without reboot" `Quick
            test_crash_at_peak_fails_without_reboot;
        ] );
    ]
