(** The paper's client/server internetwork configurations, built from
    one declarative {!spec}.

    1. [Lan]: both machines on the same lightly-loaded Ethernet.
    2. [Campus]: two Ethernets joined by an 80 Mbit/s token ring and two
       IP routers, with bursty backbone cross-traffic.
    3. [Wide_area]: as [Campus] plus a 56 Kbit/s point-to-point link
       and a third router.
    4. [Star]: a server with N clients, each on its own Ethernet drop —
       the server-characterization setup of [Keith90].

    Hosts default to 0.9 MIPS MicroVAXIIs with tuned DEQNA profiles.

    Beyond the four paper shapes, {!build_graph} makes fleet-scale
    worlds: N servers behind a router tier (a chained campus backbone
    or a small fat-tree) with a heterogeneous client population.

    Node and link names are stable across runs, so fault schedules can
    target them: hosts are ["client"] / ["server"] (Star clients:
    ["client0"], ["client1"], ...), routers ["router1"] .. ["router3"],
    and link bases ["eth0"] (Lan), ["eth1"] / ["ring"] / ["eth2"]
    (Campus), plus ["serial56k"] (Wide_area), and ["eth0"] ..
    ["ethN-1"] (Star).  Each base names two directions,
    ["<base>:<a>><b>"].

    Graph worlds extend the contract: servers are ["server0"] ..
    ["serverN-1"] (node ids 2..), routers ["bb0"].. (Backbone) or
    ["spine0"].. / ["leaf0"].. (Fat_tree, ids 1000..), clients
    ["client0"].. (ids 100_000..); link bases are ["srv<i>"] (server
    edges), ["cl<i>"] (client edges), ["bbring<i>"] (backbone hops)
    and ["ft<i>_<j>"] (spine<i>-leaf<j>). *)

type params = {
  seed : int;
  client_mips : float;
  server_mips : float;
  client_nic : Nic.profile;
  server_nic : Nic.profile;
  cross_traffic : bool;  (** competing load on shared segments *)
  link_loss : float;  (** random per-packet loss on backbone links *)
}

val default_params : params
(** seed 1, 0.9 MIPS hosts, tuned DEQNAs, cross-traffic on, 0.1% backbone
    loss. *)

type shape = Lan | Campus | Wide_area | Star

type spec = { shape : shape; clients : int; params : params }
(** [clients] must be 1 for every shape but [Star]. *)

val default_spec : spec
(** [Lan], one client, {!default_params}. *)

(** Router fabric between servers and clients in a graph world. *)
type tier =
  | Backbone of int
      (** [n] campus-class routers chained by token rings; hosts attach
          round-robin *)
  | Fat_tree of { spines : int; leaves : int }
      (** every spine linked to every leaf; hosts attach to leaves
          round-robin *)

type graph_spec = {
  g_servers : int;  (** 1 .. 90 *)
  g_clients : int;  (** at least 1 *)
  g_tier : tier;
  g_wan_fraction : float;
      (** fraction of clients on 56K serial edges instead of Ethernet,
          spread evenly through the population; within [0,1] *)
  g_params : params;
}

val default_graph_spec : graph_spec
(** 4 servers, 8 clients, [Backbone 1], no WAN clients,
    {!default_params}. *)

type t = {
  sim : Renofs_engine.Sim.t;
  client : Node.t;  (** the first (often only) client *)
  server : Node.t;  (** the first (often only) server *)
  clients : Node.t list;  (** every client host, [client] first *)
  servers : Node.t list;  (** every server host, [server] first *)
  routers : Node.t list;
  all : Node.t list;
  bottleneck : Link.t option;
      (** the link most likely to congest (client-bound direction), when
          there is one: the token ring or the 56K line *)
}

val build : Renofs_engine.Sim.t -> spec -> t
(** The one constructor.  Raises [Invalid_argument] on a [clients]
    count the shape cannot honour. *)

val build_graph : Renofs_engine.Sim.t -> graph_spec -> t
(** N servers behind a router {!tier}, M clients on heterogeneous
    edges; see the naming contract above.  Raises [Invalid_argument]
    on out-of-range counts. *)

val shape_of_name : string -> shape
(** "lan", "campus", "wan" or "star".  Raises [Invalid_argument]
    otherwise. *)

val client_id : t -> int
val server_id : t -> int
