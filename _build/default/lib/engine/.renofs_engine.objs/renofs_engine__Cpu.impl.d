lib/engine/cpu.ml: Float Proc Queue Sim
