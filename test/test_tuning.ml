(* Tests for the tuning extensions: soft mounts (bounded retries) and
   the adaptive read/write transfer size of Section 4's future work. *)

open Renofs_core
module Net = Renofs_net
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module P = Nfs_proto

let quiet =
  { Net.Topology.default_params with Net.Topology.cross_traffic = false; link_loss = 0.0 }

let make_world ?(params = quiet) ?(shape = Net.Topology.Lan) ?(serve = true) () =
  let sim = Sim.create () in
  let topo =
    Net.Topology.build sim { Net.Topology.shape; clients = 1; params }
  in
  let sudp = Udp.install topo.Net.Topology.server in
  let stcp = Tcp.install topo.Net.Topology.server in
  let server = Nfs_server.create topo.Net.Topology.server ~udp:sudp ~tcp:stcp () in
  if serve then Nfs_server.start server;
  let cudp = Udp.install topo.Net.Topology.client in
  let ctcp = Tcp.install topo.Net.Topology.client in
  (sim, topo, server, cudp, ctcp)

let pattern n = Bytes.init n (fun i -> Char.chr ((i * 11) mod 256))

(* ------------------------------------------------------------------ *)
(* Soft mounts                                                        *)
(* ------------------------------------------------------------------ *)

let test_soft_mount_fails_fast_on_dead_server () =
  (* The server is not started: nothing listens on port 2049. *)
  let sim, topo, server, cudp, ctcp = make_world ~serve:false () in
  let outcome = ref "" and t_fail = ref 0.0 in
  Proc.spawn sim (fun () ->
      match
        Nfs_client.mount ~udp:cudp ~tcp:ctcp
          ~server:(Net.Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          { Nfs_client.reno_mount with Nfs_client.soft = true; retrans = 3 }
      with
      | _ -> outcome := "mounted"
      | exception Nfs_client.Nfs_error P.NFSERR_IO ->
          outcome := "eio";
          t_fail := Sim.now sim);
  Sim.run ~until:600.0 sim;
  Alcotest.(check string) "soft mount errors out" "eio" !outcome;
  (* timeo 1s with 3 retries: 1+2+4+8 = within ~20 s, not forever. *)
  Alcotest.(check bool) "bounded time" true (!t_fail < 30.0)

let test_hard_mount_keeps_retrying () =
  let sim, topo, server, cudp, ctcp = make_world ~serve:false () in
  let outcome = ref "pending" in
  Proc.spawn sim (fun () ->
      match
        Nfs_client.mount ~udp:cudp ~tcp:ctcp
          ~server:(Net.Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          Nfs_client.reno_mount
      with
      | _ -> outcome := "mounted"
      | exception _ -> outcome := "error");
  Sim.run ~until:300.0 sim;
  Alcotest.(check string) "hard mount still waiting" "pending" !outcome

let test_soft_mount_survives_when_server_up () =
  let sim, topo, server, cudp, ctcp = make_world () in
  let ok = ref false in
  Proc.spawn sim (fun () ->
      let m =
        Nfs_client.mount ~udp:cudp ~tcp:ctcp
          ~server:(Net.Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          { Nfs_client.reno_mount with Nfs_client.soft = true; retrans = 3 }
      in
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:0 (Bytes.of_string "soft but fine");
      Nfs_client.close m fd;
      let back = Nfs_client.read m (Nfs_client.open_ m "f") ~off:0 ~len:100 in
      ok := Bytes.to_string back = "soft but fine");
  Sim.run ~until:600.0 sim;
  Alcotest.(check bool) "normal operation unaffected" true !ok

(* ------------------------------------------------------------------ *)
(* Adaptive transfer size                                             *)
(* ------------------------------------------------------------------ *)

let test_adaptive_shrinks_under_loss () =
  let params =
    { Net.Topology.default_params with cross_traffic = false; link_loss = 0.03 }
  in
  let sim, topo, server, cudp, ctcp = make_world ~params ~shape:Net.Topology.Campus () in
  let final_size = ref 0 and data_ok = ref false in
  Proc.spawn sim (fun () ->
      let m =
        Nfs_client.mount ~udp:cudp ~tcp:ctcp
          ~server:(Net.Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          { Nfs_client.reno_mount with Nfs_client.adaptive_transfer = true }
      in
      let body = pattern (16 * 8192) in
      let fd = Nfs_client.create m "big" in
      Nfs_client.write m fd ~off:0 body;
      Nfs_client.close m fd;
      (* Re-read across the lossy path: Reno's own-write invalidation
         guarantees the data comes back over the wire, not the cache. *)
      let fd = Nfs_client.open_ m "big" in
      let back = Nfs_client.read m fd ~off:0 ~len:(16 * 8192) in
      data_ok := Bytes.equal back body;
      final_size := Nfs_client.current_transfer_size m);
  (try Sim.run ~until:3_000.0 sim with _ -> ());
  Alcotest.(check bool) "data integrity preserved" true !data_ok;
  Alcotest.(check bool) "transfer size shrank below 8K" true
    (!final_size < 8192 && !final_size >= 1024)

let test_adaptive_stays_at_rsize_on_clean_lan () =
  let sim, topo, server, cudp, ctcp = make_world () in
  let final_size = ref 0 in
  Proc.spawn sim (fun () ->
      let m =
        Nfs_client.mount ~udp:cudp ~tcp:ctcp
          ~server:(Net.Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          { Nfs_client.reno_mount with Nfs_client.adaptive_transfer = true }
      in
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:0 (pattern (8 * 8192));
      Nfs_client.close m fd;
      ignore (Nfs_client.read m (Nfs_client.open_ m "f") ~off:0 ~len:(8 * 8192));
      final_size := Nfs_client.current_transfer_size m);
  Sim.run ~until:600.0 sim;
  Alcotest.(check int) "no shrink without loss" 8192 !final_size

let test_sub_block_transfers_preserve_data () =
  (* Force a small transfer size via a tiny rsize-equivalent: adaptive
     off, but verify multi-RPC block assembly directly by shrinking the
     transfer by hand through loss is flaky — instead run with loss high
     enough that shrink certainly occurs, then verify bytes. *)
  let params =
    { Net.Topology.default_params with cross_traffic = false; link_loss = 0.08 }
  in
  let sim, topo, server, cudp, ctcp = make_world ~params ~shape:Net.Topology.Campus () in
  let ok = ref false in
  Proc.spawn sim (fun () ->
      let m =
        Nfs_client.mount ~udp:cudp ~tcp:ctcp
          ~server:(Net.Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          { Nfs_client.reno_mount with Nfs_client.adaptive_transfer = true }
      in
      let body = pattern 50_000 in
      let fd = Nfs_client.create m "mid" in
      Nfs_client.write m fd ~off:0 body;
      Nfs_client.close m fd;
      let back = Nfs_client.read m (Nfs_client.open_ m "mid") ~off:0 ~len:50_000 in
      ok := Bytes.equal back body);
  (try Sim.run ~until:3_000.0 sim with _ -> ());
  Alcotest.(check bool) "bytes intact through sub-block RPCs" true !ok

let () =
  Alcotest.run "tuning"
    [
      ( "soft-mounts",
        [
          Alcotest.test_case "fails fast on dead server" `Quick
            test_soft_mount_fails_fast_on_dead_server;
          Alcotest.test_case "hard mount retries forever" `Quick
            test_hard_mount_keeps_retrying;
          Alcotest.test_case "normal ops unaffected" `Quick
            test_soft_mount_survives_when_server_up;
        ] );
      ( "adaptive-transfer",
        [
          Alcotest.test_case "shrinks under loss" `Quick test_adaptive_shrinks_under_loss;
          Alcotest.test_case "stays at rsize when clean" `Quick
            test_adaptive_stays_at_rsize_on_clean_lan;
          Alcotest.test_case "sub-block integrity" `Quick
            test_sub_block_transfers_preserve_data;
        ] );
    ]
