(** The paper's three client/server internetwork configurations.

    1. {!lan}: both machines on the same lightly-loaded Ethernet.
    2. {!campus}: two Ethernets joined by an 80 Mbit/s token ring and two
       IP routers, with bursty backbone cross-traffic.
    3. {!wide_area}: as {!campus} plus a 56 Kbit/s point-to-point link
       and a third router.

    Hosts default to 0.9 MIPS MicroVAXIIs with tuned DEQNA profiles. *)

type params = {
  seed : int;
  client_mips : float;
  server_mips : float;
  client_nic : Nic.profile;
  server_nic : Nic.profile;
  cross_traffic : bool;  (** competing load on shared segments *)
  link_loss : float;  (** random per-packet loss on backbone links *)
}

val default_params : params
(** seed 1, 0.9 MIPS hosts, tuned DEQNAs, cross-traffic on, 0.1% backbone
    loss. *)

type t = {
  sim : Renofs_engine.Sim.t;
  client : Node.t;
  server : Node.t;
  routers : Node.t list;
  all : Node.t list;
  bottleneck : Link.t option;
      (** the link most likely to congest (client-bound direction), when
          there is one: the token ring or the 56K line *)
}

val lan : Renofs_engine.Sim.t -> ?params:params -> unit -> t
val campus : Renofs_engine.Sim.t -> ?params:params -> unit -> t
val wide_area : Renofs_engine.Sim.t -> ?params:params -> unit -> t

val by_name : string -> Renofs_engine.Sim.t -> ?params:params -> unit -> t
(** "lan", "campus" or "wan".  Raises [Invalid_argument] otherwise. *)

val multi_client :
  Renofs_engine.Sim.t -> clients:int -> ?params:params -> unit -> t * Node.t list
(** A server with [clients] client hosts, each on its own Ethernet drop
    (star topology): the server-characterization setup of [Keith90].
    The returned [t.client] is the first client; the list has them
    all. *)

val client_id : t -> int
val server_id : t -> int
