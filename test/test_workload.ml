open Renofs_workload
module Net = Renofs_net
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Fs = Renofs_vfs.Fs
module Disk = Renofs_vfs.Disk
module Nfs_server = Renofs_core.Nfs_server
module Nfs_client = Renofs_core.Nfs_client

let cell t ~row ~col =
  match List.nth_opt t.Experiments.rows row with
  | Some r -> List.nth r col
  | None -> Alcotest.failf "table %s: no row %d" t.Experiments.id row

let fcell t ~row ~col = float_of_string (cell t ~row ~col)

(* Serial Quick regeneration of one registry artifact via the typed
   spec API (the shape every caller uses since the one-call wrappers
   were retired). *)
let quick_table id =
  Experiments.render
    (Experiments.run_spec ~jobs:1
       ((List.assoc id Experiments.specs) Experiments.Quick))

(* ------------------------------------------------------------------ *)
(* Fileset                                                            *)
(* ------------------------------------------------------------------ *)

let test_fileset_generate () =
  let fs = Fileset.generate ~dirs:3 ~files_per_dir:4 ~file_size:1000 ~long_names:false in
  Alcotest.(check int) "dirs" 3 (List.length fs.Fileset.dirs);
  Alcotest.(check int) "files" 12 (List.length fs.Fileset.files);
  List.iter
    (fun p ->
      match String.split_on_char '/' p with
      | [ _; name ] ->
          Alcotest.(check bool) "short name" true (String.length name <= 31)
      | _ -> Alcotest.fail "bad path shape")
    fs.Fileset.files

let test_fileset_long_names_defeat_cache () =
  let fs = Fileset.generate ~dirs:1 ~files_per_dir:1 ~file_size:0 ~long_names:true in
  List.iter
    (fun p ->
      match String.split_on_char '/' p with
      | [ _; name ] ->
          Alcotest.(check bool) "beyond 31 chars" true (String.length name > 31)
      | _ -> Alcotest.fail "bad path shape")
    fs.Fileset.files

let test_fileset_preload () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let sudp = Udp.install topo.Net.Topology.server in
  let server = Nfs_server.create topo.Net.Topology.server ~udp:sudp () in
  let fileset = Fileset.generate ~dirs:2 ~files_per_dir:3 ~file_size:5000 ~long_names:false in
  let done_ = ref false in
  Proc.spawn sim (fun () ->
      Fileset.preload_server server fileset;
      (* Verification must also run inside a process: Fs operations
         block on the simulated disk. *)
      let fs = Nfs_server.fs server in
      List.iter
        (fun path ->
          match String.split_on_char '/' path with
          | [ d; name ] ->
              let dv = Fs.lookup fs (Fs.root fs) d in
              let v = Fs.lookup fs dv name in
              Alcotest.(check int) "size" 5000 (Fs.getattr fs v).Fs.size
          | _ -> Alcotest.fail "path shape")
        fileset.Fileset.files;
      done_ := true);
  Sim.run sim;
  Alcotest.(check bool) "preload finished" true !done_

(* ------------------------------------------------------------------ *)
(* Nhfsstone                                                          *)
(* ------------------------------------------------------------------ *)

let with_lan_mount opts body =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let sudp = Udp.install topo.Net.Topology.server in
  let stcp = Tcp.install topo.Net.Topology.server in
  let server = Nfs_server.create topo.Net.Topology.server ~udp:sudp ~tcp:stcp () in
  Nfs_server.start server;
  let cudp = Udp.install topo.Net.Topology.client in
  let ctcp = Tcp.install topo.Net.Topology.client in
  let result = ref None in
  Proc.spawn sim (fun () ->
      let fileset =
        Fileset.generate ~dirs:4 ~files_per_dir:10 ~file_size:16384 ~long_names:true
      in
      Fileset.preload_server server fileset;
      let m =
        Nfs_client.mount ~udp:cudp ~tcp:ctcp
          ~server:(Net.Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server) opts
      in
      result := Some (body m fileset server));
  Sim.run ~until:10_000.0 sim;
  match !result with Some r -> r | None -> Alcotest.fail "run never finished"

let test_nhfsstone_achieves_offered_rate () =
  let r =
    with_lan_mount Nfs_client.reno_mount (fun m fileset _ ->
        Nhfsstone.run m fileset
          {
            Nhfsstone.rate = 10.0;
            duration = 30.0;
            children = 4;
            mix = Nhfsstone.lookup_mix;
            seed = 3;
          })
  in
  Alcotest.(check bool) "achieved close to offered" true
    (r.Nhfsstone.achieved > 8.0 && r.Nhfsstone.achieved < 12.0);
  Alcotest.(check bool) "latency measured" true (r.Nhfsstone.mean_op_latency > 0.0);
  Alcotest.(check int) "ops counted" r.Nhfsstone.ops_completed
    (int_of_float (r.Nhfsstone.achieved *. 30.0))

let test_nhfsstone_lookup_mix_generates_lookups () =
  let counters =
    with_lan_mount Nfs_client.reno_mount (fun m fileset _ ->
        let _ =
          Nhfsstone.run m fileset
            {
              Nhfsstone.rate = 10.0;
              duration = 20.0;
              children = 2;
              mix = Nhfsstone.lookup_mix;
              seed = 3;
            }
        in
        Nfs_client.rpc_counters m)
  in
  let lookups = Renofs_engine.Stats.Counter.get counters "lookup" in
  (* Long names defeat the client name cache, so nearly every op is a
     real lookup RPC. *)
  Alcotest.(check bool) "lookup RPCs flowed" true (lookups > 100)

let test_nhfsstone_default_mix_writes () =
  (* The stock mix includes writes: they must flow (the preloaded files
     are world-readable but owned by uid 0, so the generator writes are
     denied by permissions — nhfsstone runs as root for exactly this
     reason). *)
  let counters =
    with_lan_mount { Nfs_client.reno_mount with Nfs_client.uid = 0; gid = 0 }
      (fun m fileset _ ->
        let _ =
          Nhfsstone.run m fileset
            {
              Nhfsstone.rate = 10.0;
              duration = 20.0;
              children = 4;
              mix = Nhfsstone.default_mix;
              seed = 3;
            }
        in
        Nfs_client.rpc_counters m)
  in
  let c name = Renofs_engine.Stats.Counter.get counters name in
  Alcotest.(check bool) "writes flowed" true (c "write" > 0);
  Alcotest.(check bool) "reads flowed" true (c "read" > 0);
  Alcotest.(check bool) "lookups dominate" true (c "lookup" > c "write")

let test_nhfsstone_read_mix_reads () =
  let r =
    with_lan_mount Nfs_client.reno_mount (fun m fileset _ ->
        Nhfsstone.run m fileset
          {
            Nhfsstone.rate = 10.0;
            duration = 20.0;
            children = 4;
            mix = Nhfsstone.read_lookup_mix;
            seed = 3;
          })
  in
  Alcotest.(check bool) "reads happened" true (r.Nhfsstone.read_rate > 2.0);
  Alcotest.(check bool) "read rtts recorded" true
    (List.exists (fun (n, _, c) -> n = "read" && c > 0) r.Nhfsstone.rtt_by_proc)

(* ------------------------------------------------------------------ *)
(* Andrew                                                             *)
(* ------------------------------------------------------------------ *)

let tiny_andrew =
  {
    Andrew.default_config with
    Andrew.source_files = 8;
    header_files = 4;
    compile_instructions_per_byte = 50.0;
  }

let run_andrew opts =
  with_lan_mount opts (fun m _ _ -> Andrew.run m ~config:tiny_andrew ())

let test_andrew_phases_and_counts () =
  let r = run_andrew Nfs_client.reno_mount in
  Array.iteri
    (fun i t ->
      Alcotest.(check bool) (Printf.sprintf "phase %d has time" i) true (t > 0.0))
    r.Andrew.phase_times;
  Alcotest.(check bool) "writes counted" true
    (List.assoc "write" r.Andrew.rpc_counts > 0);
  Alcotest.(check bool) "total positive" true (r.Andrew.total_rpcs > 50)

let test_andrew_reno_vs_ultrix_lookups () =
  let reno = run_andrew Nfs_client.reno_mount in
  let ultrix = run_andrew Nfs_client.ultrix_mount in
  let l r = List.assoc "lookup" r.Andrew.rpc_counts in
  Alcotest.(check bool) "name cache cuts lookup RPCs at least in half" true
    (l reno * 2 <= l ultrix)

let test_andrew_noconsist_fewer_writes () =
  let reno = run_andrew Nfs_client.reno_mount in
  let nc = run_andrew Nfs_client.noconsist_mount in
  let w r = List.assoc "write" r.Andrew.rpc_counts in
  Alcotest.(check bool) "noconsist writes fewer" true (w nc < w reno)

(* ------------------------------------------------------------------ *)
(* Create-Delete                                                      *)
(* ------------------------------------------------------------------ *)

let test_create_delete_policies () =
  let nfs opts bytes =
    with_lan_mount opts (fun m _ _ ->
        Create_delete.run_nfs m { Create_delete.data_bytes = bytes; iterations = 4 })
  in
  let wt = nfs { Nfs_client.reno_mount with Nfs_client.write_policy = Nfs_client.Write_through } 102400 in
  let nc = nfs Nfs_client.noconsist_mount 102400 in
  Alcotest.(check bool) "noconsist much faster at 100K" true (nc < wt /. 2.0);
  let no_data = nfs Nfs_client.reno_mount 0 in
  Alcotest.(check bool) "no-data cheaper than 100K" true (no_data < wt)

let test_create_delete_local_baseline () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:0.9 in
  let disk = Disk.create sim () in
  let fs = Fs.create sim cpu disk Fs.local_config in
  let result = ref None in
  Proc.spawn sim (fun () ->
      result :=
        Some (Create_delete.run_local sim cpu fs { Create_delete.data_bytes = 10240; iterations = 5 }));
  Sim.run sim;
  match !result with
  | Some ms ->
      (* Synchronous metadata only: order 100-300 ms on an RD53. *)
      Alcotest.(check bool) "local in plausible range" true (ms > 50.0 && ms < 500.0)
  | None -> Alcotest.fail "local run never finished"

(* ------------------------------------------------------------------ *)
(* Experiments: every runner produces a well-shaped table, and the     *)
(* headline claims hold at Quick scale.                                *)
(* ------------------------------------------------------------------ *)

let test_all_experiments_produce_tables () =
  List.iter
    (fun (id, _) ->
      let t = quick_table id in
      Alcotest.(check string) "id matches" id t.Experiments.id;
      Alcotest.(check bool) (id ^ " has rows") true (List.length t.Experiments.rows > 0);
      let cols = List.length t.Experiments.header in
      List.iter
        (fun row ->
          Alcotest.(check int) (id ^ " row width") cols (List.length row))
        t.Experiments.rows)
    Experiments.specs

let test_graph6_tcp_costs_more () =
  let t = quick_table "graph6" in
  List.iteri
    (fun i _ ->
      let udp = fcell t ~row:i ~col:1 and tcp = fcell t ~row:i ~col:2 in
      Alcotest.(check bool) "tcp cpu above udp" true (tcp > udp))
    t.Experiments.rows

let test_graph8_reference_port_slower () =
  let t = quick_table "graph8" in
  List.iteri
    (fun i _ ->
      let reno = fcell t ~row:i ~col:1 and ultrix = fcell t ~row:i ~col:3 in
      Alcotest.(check bool) "reference port slower" true (ultrix > reno *. 1.3))
    t.Experiments.rows

let test_section3_reduction () =
  let t = quick_table "section3" in
  let stock = fcell t ~row:0 ~col:1 and tuned = fcell t ~row:1 ~col:1 in
  Alcotest.(check bool) "tuning reduces CPU" true (tuned < stock);
  Alcotest.(check bool) "by a meaningful fraction" true ((stock -. tuned) /. stock > 0.05)

let test_table5_noconsist_wins_big_files () =
  let t = quick_table "table5" in
  (* rows: Local, write thru, async4, async16, delay, noconsist *)
  let wt_100k = fcell t ~row:1 ~col:3 and nc_100k = fcell t ~row:5 ~col:3 in
  Alcotest.(check bool) "noconsist >2x faster on 100K" true (nc_100k < wt_100k /. 2.0);
  let local_0 = fcell t ~row:0 ~col:1 and wt_0 = fcell t ~row:1 ~col:1 in
  Alcotest.(check bool) "local cheapest with no data" true (local_0 < wt_0)

let test_table3_cache_claims () =
  let t = quick_table "table3" in
  let find name col =
    let row =
      List.find (fun r -> List.hd r = name) t.Experiments.rows
    in
    int_of_string (List.nth row col)
  in
  (* columns: 1 = Reno, 2 = Reno-noconsist, 3 = Reno-v3, 4 = Ultrix *)
  Alcotest.(check bool) "ultrix lookups at least double" true
    (find "Lookup" 4 >= 2 * find "Lookup" 1);
  Alcotest.(check bool) "noconsist cuts writes" true (find "Write" 2 < find "Write" 1);
  Alcotest.(check bool) "ultrix writes more" true (find "Write" 4 > find "Write" 1);
  Alcotest.(check bool) "reno reads at least noconsist" true
    (find "Read" 1 >= find "Read" 2);
  (* The v3 profile moves the write traffic to WRITE3+COMMIT, in fewer
     RPCs than Reno's 8K v2 writes (32K transfers batch harder). *)
  Alcotest.(check int) "v3 issues no v2 writes" 0 (find "Write" 3);
  Alcotest.(check bool) "v3 write3s are fewer than reno writes" true
    (find "Write3" 3 < find "Write" 1);
  Alcotest.(check bool) "every v3 close commits" true (find "Commit" 3 > 0)

let test_table1_congestion_control_wins_on_56k () =
  let t = quick_table "table1" in
  (* row 2 = 56Kbps; cols 1..3 = udp-fixed, udp-dyn, tcp *)
  let fixed = fcell t ~row:2 ~col:1 and tcp = fcell t ~row:2 ~col:3 in
  Alcotest.(check bool) "tcp reads faster than fixed-RTO UDP" true (tcp > fixed *. 1.3)

let test_graph7_trace_tracks () =
  let t = quick_table "graph7" in
  Alcotest.(check bool) "trace has points" true (List.length t.Experiments.rows > 5);
  (* The RTO envelope should sit above the smoothed RTT most of the time. *)
  let above =
    List.filter
      (fun row ->
        float_of_string (List.nth row 2) >= float_of_string (List.nth row 1))
      t.Experiments.rows
  in
  Alcotest.(check bool) "rto mostly above rtt" true
    (2 * List.length above > List.length t.Experiments.rows)

(* ------------------------------------------------------------------ *)
(* Ascii_plot                                                         *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_plot_axis_scaling () =
  let chart =
    Ascii_plot.render ~width:40 ~height:10 ~x_label:"load" ~y_label:"ms"
      ~x:[ 0.0; 5.0; 10.0 ]
      ~series:[ ("rtt", [ 1.0; 2.0; 4.0 ]) ]
      ()
  in
  (* The y axis is zero-based and spans the data maximum; the x axis
     runs from the smallest to the largest x. *)
  Alcotest.(check bool) "y max labeled" true (contains chart "4.0");
  Alcotest.(check bool) "y zero-based" true (contains chart "0.0");
  Alcotest.(check bool) "x min labeled" true (contains chart "0.0");
  Alcotest.(check bool) "x max labeled" true (contains chart "10.0");
  Alcotest.(check bool) "x label shown" true (contains chart "load");
  Alcotest.(check bool) "legend names series" true (contains chart "rtt")

let test_plot_empty () =
  let chart = Ascii_plot.render ~x_label:"x" ~y_label:"y" ~x:[] ~series:[] () in
  Alcotest.(check string) "no data" "(no data)\n" chart

let test_plot_single_point () =
  let chart =
    Ascii_plot.render ~width:30 ~height:8 ~x_label:"t" ~y_label:"v" ~x:[ 2.0 ]
      ~series:[ ("s", [ 3.0 ]) ]
      ()
  in
  Alcotest.(check bool) "renders a marker" true (contains chart "*");
  Alcotest.(check bool) "y max is the value" true (contains chart "3.0")

let test_plot_nan_rejected () =
  (* NaN/infinite points must neither crash nor stretch the axes. *)
  let chart =
    Ascii_plot.render ~width:40 ~height:10 ~x_label:"t" ~y_label:"v"
      ~x:[ 1.0; 2.0; 3.0 ]
      ~series:[ ("s", [ 1.0; Float.nan; Float.infinity ]) ]
      ()
  in
  Alcotest.(check bool) "finite y max" true (contains chart "1.0");
  Alcotest.(check bool) "no inf in axis" false (contains chart "inf");
  Alcotest.(check bool) "no nan in axis" false (contains chart "nan");
  let all_nan =
    Ascii_plot.render ~x_label:"t" ~y_label:"v" ~x:[ Float.nan ]
      ~series:[ ("s", [ 1.0 ]) ]
      ()
  in
  Alcotest.(check string) "all-NaN x renders as no data" "(no data)\n" all_nan

let () =
  Alcotest.run "workload"
    [
      ( "fileset",
        [
          Alcotest.test_case "generate" `Quick test_fileset_generate;
          Alcotest.test_case "long names" `Quick test_fileset_long_names_defeat_cache;
          Alcotest.test_case "preload" `Quick test_fileset_preload;
        ] );
      ( "nhfsstone",
        [
          Alcotest.test_case "achieves offered rate" `Quick test_nhfsstone_achieves_offered_rate;
          Alcotest.test_case "lookup mix" `Quick test_nhfsstone_lookup_mix_generates_lookups;
          Alcotest.test_case "read mix" `Quick test_nhfsstone_read_mix_reads;
          Alcotest.test_case "default mix writes" `Quick test_nhfsstone_default_mix_writes;
        ] );
      ( "andrew",
        [
          Alcotest.test_case "phases and counts" `Quick test_andrew_phases_and_counts;
          Alcotest.test_case "reno vs ultrix lookups" `Quick test_andrew_reno_vs_ultrix_lookups;
          Alcotest.test_case "noconsist fewer writes" `Quick test_andrew_noconsist_fewer_writes;
        ] );
      ( "create-delete",
        [
          Alcotest.test_case "policies" `Quick test_create_delete_policies;
          Alcotest.test_case "local baseline" `Quick test_create_delete_local_baseline;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "all tables well-shaped" `Slow test_all_experiments_produce_tables;
          Alcotest.test_case "graph6 tcp premium" `Quick test_graph6_tcp_costs_more;
          Alcotest.test_case "graph8 server gap" `Quick test_graph8_reference_port_slower;
          Alcotest.test_case "section3 reduction" `Quick test_section3_reduction;
          Alcotest.test_case "table5 noconsist" `Quick test_table5_noconsist_wins_big_files;
          Alcotest.test_case "table3 cache claims" `Quick test_table3_cache_claims;
          Alcotest.test_case "table1 56K transports" `Quick test_table1_congestion_control_wins_on_56k;
          Alcotest.test_case "graph7 trace" `Quick test_graph7_trace_tracks;
        ] );
      ( "ascii-plot",
        [
          Alcotest.test_case "axis scaling" `Quick test_plot_axis_scaling;
          Alcotest.test_case "empty" `Quick test_plot_empty;
          Alcotest.test_case "single point" `Quick test_plot_single_point;
          Alcotest.test_case "nan rejected" `Quick test_plot_nan_rejected;
        ] );
    ]
