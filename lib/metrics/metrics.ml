module Sim = Renofs_engine.Sim
module Stats = Renofs_engine.Stats
module Json = Renofs_json.Json

type kind = Counter | Gauge | Histogram

type series = {
  e_run : string;
  e_name : string;
  e_kind : kind;
  e_unit : string;
  e_labels : (string * string) list;
  e_points : (float * float) list;
}

type source = {
  s_name : string;
  s_unit : string;
  s_kind : kind;
  s_labels : (string * string) list;
  s_sample : unit -> float;
  s_points : Stats.Timeseries.t;
}

type run = { r_label : string; mutable r_sources_rev : source list }

type t = {
  m_interval : float;
  m_enabled : bool ref;
  mutable m_runs_rev : run list;
}

let create ?(interval = 0.5) () =
  if interval <= 0.0 then invalid_arg "Metrics.create: nonpositive interval";
  { m_interval = interval; m_enabled = ref true; m_runs_rev = [] }

let interval t = t.m_interval
let set_enabled t b = t.m_enabled := b
let enabled t = !(t.m_enabled)
let runs t = List.rev t.m_runs_rev

let uniquify t label =
  let taken l = List.exists (fun r -> r.r_label = l) t.m_runs_rev in
  if not (taken label) then label
  else
    let rec go i =
      let cand = Printf.sprintf "%s#%d" label i in
      if taken cand then go (i + 1) else cand
    in
    go 2

let start_run t ~sim ~label =
  let run = { r_label = uniquify t label; r_sources_rev = [] } in
  t.m_runs_rev <- run :: t.m_runs_rev;
  (* The sources list is re-read on every tick, so components that come
     up mid-run (a client mounting) join the next sample. *)
  let rec tick () =
    if !(t.m_enabled) then begin
      let sample () =
        let now = Sim.now sim in
        List.iter
          (fun s ->
            let v = s.s_sample () in
            if Float.is_finite v then Stats.Timeseries.add s.s_points now v)
          (List.rev run.r_sources_rev)
      in
      (* Sampling cost is observer overhead when probed. *)
      match Sim.probe sim with
      | None -> sample ()
      | Some p ->
          let d = p.Renofs_engine.Probe.enter Renofs_engine.Probe.observer in
          (try sample () with e -> p.Renofs_engine.Probe.leave d; raise e);
          p.Renofs_engine.Probe.leave d
    end;
    ignore (Sim.timer_after sim t.m_interval tick)
  in
  ignore (Sim.timer_after sim t.m_interval tick);
  run

let register ?(labels = []) run ~name ~unit_ ~kind sample =
  run.r_sources_rev <-
    {
      s_name = name;
      s_unit = unit_;
      s_kind = kind;
      s_labels = labels;
      s_sample = sample;
      s_points = Stats.Timeseries.create ~name ();
    }
    :: run.r_sources_rev

let register_hist ?(labels = []) run ~name ~unit_ hist =
  let q p () =
    if Stats.Hist.count hist = 0 then nan else Stats.Hist.quantile hist p
  in
  register ~labels run ~name:(name ^ "/p50") ~unit_ ~kind:Histogram (q 0.5);
  register ~labels run ~name:(name ^ "/p95") ~unit_ ~kind:Histogram (q 0.95)

let merge ~into t =
  into.m_runs_rev <- t.m_runs_rev @ into.m_runs_rev;
  t.m_runs_rev <- []

let series t =
  List.concat_map
    (fun run ->
      List.rev_map
        (fun s ->
          {
            e_run = run.r_label;
            e_name = s.s_name;
            e_kind = s.s_kind;
            e_unit = s.s_unit;
            e_labels = s.s_labels;
            e_points = Stats.Timeseries.to_list s.s_points;
          })
        run.r_sources_rev)
    (runs t)

(* ------------------------------------------------------------------ *)
(* renofs-metrics/1 export / import                                   *)
(* ------------------------------------------------------------------ *)

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let kind_of_name = function
  | "counter" -> Some Counter
  | "gauge" -> Some Gauge
  | "histogram" -> Some Histogram
  | _ -> None

(* Shortest decimal that round-trips, as in [Bench_json.float_str], so
   serial and parallel exports are byte-identical. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s15 = Printf.sprintf "%.15g" v in
    if float_of_string s15 = v then s15
    else
      let s16 = Printf.sprintf "%.16g" v in
      if float_of_string s16 = v then s16 else Printf.sprintf "%.17g" v

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Unlabelled series emit no "labels" member at all, so every export
   written before labels existed stays byte-identical. *)
let labels_field = function
  | [] -> ""
  | labels ->
      Printf.sprintf {|,"labels":{%s}|}
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf {|"%s":"%s"|} (escape k) (escape v))
              labels))

let series_line s =
  let points =
    String.concat ","
      (List.map
         (fun (t, v) -> Printf.sprintf "[%s,%s]" (float_str t) (float_str v))
         s.e_points)
  in
  Printf.sprintf
    {|{"run":"%s","name":"%s","kind":"%s","unit":"%s"%s,"points":[%s]}|}
    (escape s.e_run) (escape s.e_name) (kind_name s.e_kind) (escape s.e_unit)
    (labels_field s.e_labels) points

let export_jsonl t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let all = series t in
      Printf.fprintf oc
        {|{"schema":"renofs-metrics/1","interval":%s,"series":%d}|}
        (float_str t.m_interval) (List.length all);
      output_char oc '\n';
      List.iter
        (fun s ->
          output_string oc (series_line s);
          output_char oc '\n')
        all)

let export_csv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "run,series,kind,unit,time,value\n";
      List.iter
        (fun s ->
          let name =
            match s.e_labels with
            | [] -> s.e_name
            | labels ->
                Printf.sprintf "%s{%s}" s.e_name
                  (String.concat ";"
                     (List.map (fun (k, v) -> k ^ "=" ^ v) labels))
          in
          List.iter
            (fun (time, v) ->
              Printf.fprintf oc "%s,%s,%s,%s,%s,%s\n" s.e_run name
                (kind_name s.e_kind) s.e_unit (float_str time) (float_str v))
            s.e_points)
        (series t))

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let import_jsonl path =
  match read_lines path with
  | exception Sys_error msg -> Error msg
  | [] -> Error (path ^ ": empty file")
  | header :: rest -> (
      let parse_series lineno line =
        Json.decode_line ~path ~lineno line (fun j ->
            let ctx = "series" in
            let o = Json.obj ~ctx j in
            let field name = Json.str ~ctx (Json.member ~ctx name o) in
            let kind_s = field "kind" in
            match kind_of_name kind_s with
            | None -> raise (Json.Bad (Printf.sprintf "unknown kind %S" kind_s))
            | Some kind ->
                let points =
                  Json.arr ~ctx (Json.member ~ctx "points" o)
                  |> List.map (fun p ->
                         match Json.arr ~ctx p with
                         | [ t; v ] -> (Json.num ~ctx t, Json.num ~ctx v)
                         | _ -> raise (Json.Bad "point is not a [time,value] pair"))
                in
                let labels =
                  match Json.member_opt "labels" o with
                  | None -> []
                  | Some j ->
                      List.map
                        (fun (k, v) -> (k, Json.str ~ctx v))
                        (Json.obj ~ctx j)
                in
                {
                  e_run = field "run";
                  e_name = field "name";
                  e_kind = kind;
                  e_unit = field "unit";
                  e_labels = labels;
                  e_points = points;
                })
      in
      let check_header j =
        let ctx = "header" in
        let o = Json.obj ~ctx j in
        let schema = Json.str ~ctx (Json.member ~ctx "schema" o) in
        if schema <> "renofs-metrics/1" then
          raise (Json.Bad (Printf.sprintf "unsupported schema %S" schema))
      in
      match Json.decode_line ~path ~lineno:1 header check_header with
      | Error _ as e -> e
      | Ok () ->
          let rec go lineno acc = function
            | [] -> Ok (List.rev acc)
            | "" :: rest -> go (lineno + 1) acc rest
            | line :: rest -> (
                match parse_series lineno line with
                | Error _ as e -> e
                | Ok s -> go (lineno + 1) (s :: acc) rest)
          in
          go 2 [] rest)
