(** Online statistics used by the measurement harness. *)

(** Welford's online mean/variance. *)
module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
end

(** Fixed-width bucketed histogram with an overflow bucket. *)
module Hist : sig
  type t

  val create : bucket_width:float -> buckets:int -> t
  val add : t -> float -> unit
  val count : t -> int
  val quantile : t -> float -> float
  (** [quantile t 0.5] is an upper bound on the median (bucket boundary).
      Raises [Invalid_argument] on an empty histogram or q outside [0,1]. *)

  val to_list : t -> (float * int) list
  (** [(bucket_upper_bound, count)] pairs, overflow last with bound
      [infinity]. *)
end

(** Append-only (time, value) traces, e.g. the Graph 7 RTT/RTO trace or
    a metrics sampler's per-series points. *)
module Timeseries : sig
  type t

  val create : ?name:string -> unit -> t
  val name : t -> string
  val add : t -> float -> float -> unit
  val length : t -> int
  val to_list : t -> (float * float) list

  val delta : (float * float) list -> (float * float) list
  (** Successive value differences, stamped at the later point's time:
      n points yield n-1; empty and single-point inputs yield []. *)

  val rate : (float * float) list -> (float * float) list
  (** Successive per-second rates ([delta] / time step), for
      counter-valued series.  Pairs with a nonpositive time step are
      skipped; empty and single-point inputs yield []. *)
end

module Series = Timeseries
(** Compatibility alias for {!Timeseries}. *)

(** Named integer counters, e.g. per-RPC-type counts. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int
  val total : t -> int
  val to_list : t -> (string * int) list
  (** Sorted by key. *)

  val reset : t -> unit
end
