test/test_mountd.ml: Alcotest Bytes List Mount_proto Mountd Nfs_client Nfs_server Renofs_core Renofs_engine Renofs_net Renofs_transport Renofs_vfs Renofs_xdr String
