test/test_mbuf.ml: Alcotest Buffer Bytes Char Gen List Mbuf Printf QCheck QCheck_alcotest Renofs_mbuf String
