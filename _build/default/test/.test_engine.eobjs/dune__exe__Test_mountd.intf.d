test/test_mountd.mli:
